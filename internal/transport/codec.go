package transport

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Encoder builds a binary message body: fixed-width big-endian integers,
// IEEE-754 bit-exact floats, and length-prefixed sequences. The format is
// deliberately trivial — no reflection, no varints — so that encode(decode)
// round-trips are bit-identical, which the serving runtime's determinism
// oracle depends on (float64 coordinates must survive the wire untouched).
//
// The zero value is ready to use.
type Encoder struct{ b []byte }

// Bytes returns the encoded message.
func (e *Encoder) Bytes() []byte { return e.b }

// Grow ensures capacity for n more bytes, so encoders that can size their
// message up front pay one allocation instead of a doubling chain.
func (e *Encoder) Grow(n int) {
	if cap(e.b)-len(e.b) < n {
		nb := make([]byte, len(e.b), len(e.b)+n)
		copy(nb, e.b)
		e.b = nb
	}
}

// U8 appends one byte.
func (e *Encoder) U8(v uint8) { e.b = append(e.b, v) }

// U32 appends a big-endian uint32.
func (e *Encoder) U32(v uint32) { e.b = binary.BigEndian.AppendUint32(e.b, v) }

// U64 appends a big-endian uint64 (state version counters).
func (e *Encoder) U64(v uint64) { e.b = binary.BigEndian.AppendUint64(e.b, v) }

// Int appends an int as a big-endian int64.
func (e *Encoder) Int(v int) { e.b = binary.BigEndian.AppendUint64(e.b, uint64(int64(v))) }

// F64 appends a float64 bit pattern.
func (e *Encoder) F64(v float64) { e.b = binary.BigEndian.AppendUint64(e.b, math.Float64bits(v)) }

// Floats appends a length-prefixed []float64. The fixed-width format makes
// the size exact, so the whole sequence costs at most one allocation.
func (e *Encoder) Floats(v []float64) {
	e.Grow(4 + 8*len(v))
	e.U32(uint32(len(v)))
	for _, x := range v {
		e.F64(x)
	}
}

// Ints appends a length-prefixed []int (sized up front, like Floats).
func (e *Encoder) Ints(v []int) {
	e.Grow(4 + 8*len(v))
	e.U32(uint32(len(v)))
	for _, x := range v {
		e.Int(x)
	}
}

// String appends a length-prefixed UTF-8 string.
func (e *Encoder) String(s string) {
	e.Grow(4 + len(s))
	e.U32(uint32(len(s)))
	e.b = append(e.b, s...)
}

// Decoder reads a message produced by Encoder. Errors are sticky: after the
// first short read every accessor returns zero values, and Err/Finish report
// the failure — callers check once at the end instead of after every field.
//
// The FloatsShared/IntsShared variants decode into a chunked arena owned by
// the decoder instead of allocating one slice per sequence: a message that
// carries hundreds of short vectors (views, record lists, item batches) costs
// a handful of block allocations rather than one per vector. The returned
// slices stay valid for as long as anything references them — the blocks are
// ordinary GC-managed memory, never a view of a transport buffer — so callers
// may retain them under the usual shared-read contract, or copy explicitly
// when they need private mutable storage (store.Append is such a copy point).
type Decoder struct {
	b   []byte
	off int
	err error

	// arena blocks for FloatsShared; a block is never reallocated once handed
	// out, so subslices of it are stable.
	farena []float64
	iarena []int
}

// NewDecoder wraps an encoded message.
func NewDecoder(b []byte) *Decoder { return &Decoder{b: b} }

// Err returns the first decode error, if any.
func (d *Decoder) Err() error { return d.err }

// Finish returns the first decode error, or an error if trailing bytes
// remain — a message must be consumed exactly.
func (d *Decoder) Finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.b) {
		return fmt.Errorf("transport: %d trailing bytes in message", len(d.b)-d.off)
	}
	return nil
}

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if len(d.b)-d.off < n {
		d.err = fmt.Errorf("transport: truncated message: want %d bytes at offset %d, have %d", n, d.off, len(d.b)-d.off)
		return nil
	}
	out := d.b[d.off : d.off+n]
	d.off += n
	return out
}

// U8 reads one byte.
func (d *Decoder) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U32 reads a big-endian uint32.
func (d *Decoder) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

// U64 reads a big-endian uint64.
func (d *Decoder) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// Int reads an int written by Encoder.Int.
func (d *Decoder) Int() int {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return int(int64(binary.BigEndian.Uint64(b)))
}

// F64 reads a float64 bit pattern.
func (d *Decoder) F64() float64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return math.Float64frombits(binary.BigEndian.Uint64(b))
}

// Count reads a sequence count and bounds it by the remaining payload, given
// the minimum bytes one element can encode to: a corrupt or adversarial
// prefix cannot force a huge allocation, it trips the sticky error instead.
// Composite decoders (zone lists, record lists) must use this rather than a
// raw U32 before sizing a slice.
func (d *Decoder) Count(minElemSize int) int {
	return d.seqLen(minElemSize)
}

// len reads a sequence length and bounds it by the remaining payload so a
// corrupt prefix cannot force a huge allocation.
func (d *Decoder) seqLen(elemSize int) int {
	n := int(d.U32())
	if d.err != nil {
		return 0
	}
	if n*elemSize > len(d.b)-d.off {
		d.err = fmt.Errorf("transport: sequence length %d exceeds remaining %d bytes", n, len(d.b)-d.off)
		return 0
	}
	return n
}

// Floats reads a length-prefixed []float64 (nil when empty).
func (d *Decoder) Floats() []float64 {
	n := d.seqLen(8)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = d.F64()
	}
	return out
}

// Ints reads a length-prefixed []int (nil when empty).
func (d *Decoder) Ints() []int {
	n := d.seqLen(8)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = d.Int()
	}
	return out
}

// arenaBlock is the float/int capacity of one decoder arena block. Big
// enough that a typical message decodes from one or two blocks, small enough
// that retaining a few vectors from a message doesn't pin megabytes.
const arenaBlock = 4096

// FloatsShared reads a length-prefixed []float64 into the decoder's arena:
// same bytes as Floats, but amortized allocation (see the Decoder comment for
// the retention contract). Sequences longer than a block get a dedicated
// exact-size allocation.
func (d *Decoder) FloatsShared() []float64 {
	n := d.seqLen(8)
	if d.err != nil || n == 0 {
		return nil
	}
	if n > arenaBlock {
		out := make([]float64, n)
		for i := range out {
			out[i] = d.F64()
		}
		return out
	}
	if cap(d.farena)-len(d.farena) < n {
		// Every future sequence decodes from this message, so its remaining
		// length bounds the block: small messages get small blocks (retaining
		// a decoded slice never pins more than ~the message), large ones
		// amortize across arenaBlock-sized chunks.
		d.farena = make([]float64, 0, blockCap(n, len(d.b)-d.off))
	}
	base := len(d.farena)
	for i := 0; i < n; i++ {
		d.farena = append(d.farena, d.F64())
	}
	return d.farena[base : base+n : base+n]
}

// blockCap sizes a fresh arena block: the remaining message bytes cap the
// useful capacity, arenaBlock caps the chunk, and the sequence being decoded
// (already validated to fit the message) sets the floor.
func blockCap(n, remaining int) int {
	c := remaining / 8
	if c > arenaBlock {
		c = arenaBlock
	}
	if c < n {
		c = n
	}
	return c
}

// IntsShared reads a length-prefixed []int into the decoder's arena (the
// []int twin of FloatsShared).
func (d *Decoder) IntsShared() []int {
	n := d.seqLen(8)
	if d.err != nil || n == 0 {
		return nil
	}
	if n > arenaBlock {
		out := make([]int, n)
		for i := range out {
			out[i] = d.Int()
		}
		return out
	}
	if cap(d.iarena)-len(d.iarena) < n {
		d.iarena = make([]int, 0, blockCap(n, len(d.b)-d.off))
	}
	base := len(d.iarena)
	for i := 0; i < n; i++ {
		d.iarena = append(d.iarena, d.Int())
	}
	return d.iarena[base : base+n : base+n]
}

// String reads a length-prefixed string.
func (d *Decoder) String() string {
	n := d.seqLen(1)
	if d.err != nil || n == 0 {
		return ""
	}
	return string(d.take(n))
}
