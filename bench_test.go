package hyperm

// One benchmark per figure of the paper's evaluation (DESIGN.md §3). Each
// benchmark runs the corresponding experiment driver at the scaled-down
// default parameters and reports the figure's headline quantity as a custom
// metric, so `go test -bench=. -benchmem` regenerates every result series.
// The CLI (cmd/hyperm-bench) runs the same drivers, optionally at paper
// scale, and prints the full tables.

import (
	"testing"

	"hyperm/internal/experiments"
)

func BenchmarkFig8aReplicationOverhead(b *testing.B) {
	p := experiments.DefaultParams()
	for i := 0; i < b.N; i++ {
		p.Seed = int64(i + 1)
		rows, err := experiments.Fig8a(p, []int{5, 10, 20})
		if err != nil {
			b.Fatal(err)
		}
		last := rows[len(rows)-1]
		b.ReportMetric(last.AvgHopsWithReplication, "hops/cluster")
		b.ReportMetric(last.AvgHopsWithReplication-last.AvgHopsNoReplication, "replication-hops/cluster")
	}
}

func BenchmarkFig8bInsertionVsVolume(b *testing.B) {
	p := experiments.DefaultParams()
	for i := 0; i < b.N; i++ {
		p.Seed = int64(i + 1)
		rows, err := experiments.Fig8b(p, nil)
		if err != nil {
			b.Fatal(err)
		}
		last := rows[len(rows)-1]
		b.ReportMetric(last.HyperM, "hyperm-hops/item")
		b.ReportMetric(last.CAN2D, "can2d-hops/item")
		b.ReportMetric(last.CANFull, "canfull-hops/item")
		if last.CANFull > 0 {
			b.ReportMetric(last.CANFull/last.HyperM, "speedup-vs-canfull")
		}
	}
}

func BenchmarkFig8cInsertionVsLayers(b *testing.B) {
	p := experiments.DefaultParams()
	for i := 0; i < b.N; i++ {
		p.Seed = int64(i + 1)
		rows, err := experiments.Fig8c(p, []int{1, 2, 4})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].HyperM, "hops/item-1layer")
		b.ReportMetric(rows[len(rows)-1].HyperM, "hops/item-4layers")
	}
}

func BenchmarkFig9DataDistribution(b *testing.B) {
	p := experiments.DefaultParams()
	for i := 0; i < b.N; i++ {
		p.Seed = int64(i + 1)
		rows, err := experiments.Fig9(p, 3)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].Gini, "gini-can-original")
		b.ReportMetric(rows[1].Gini, "gini-A-only")
		b.ReportMetric(rows[len(rows)-1].Gini, "gini-all-levels")
		b.ReportMetric(float64(rows[len(rows)-1].NonEmptyPeers), "peers-holding-data")
	}
}

func BenchmarkFig10aRangeRecall(b *testing.B) {
	p := experiments.DefaultEffectiveness()
	for i := 0; i < b.N; i++ {
		p.Seed = int64(i + 1)
		rows, err := experiments.Fig10a(p, []int{1, 3, 8, 0})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].RecallAvg, "recall-1peer")
		b.ReportMetric(rows[len(rows)-1].RecallAvg, "recall-unlimited")
		b.ReportMetric(rows[len(rows)-1].Precision, "precision")
	}
}

func BenchmarkFig10bKnn(b *testing.B) {
	p := experiments.DefaultEffectiveness()
	for i := 0; i < b.N; i++ {
		p.Seed = int64(i + 1)
		rows, err := experiments.Fig10b(p, []int{10}, []float64{1, 1.5, 2})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].PrecisionAvg, "precision-C1")
		b.ReportMetric(rows[0].RecallAvg, "recall-C1")
		b.ReportMetric(rows[len(rows)-1].PrecisionAvg, "precision-C2")
		b.ReportMetric(rows[len(rows)-1].RecallAvg, "recall-C2")
	}
}

func BenchmarkFig10cPostInsertion(b *testing.B) {
	p := experiments.DefaultEffectiveness()
	for i := 0; i < b.N; i++ {
		p.Seed = int64(i + 1)
		rows, err := experiments.Fig10c(p, []float64{0, 0.45})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].RecallAvg, "recall-0pct-new")
		b.ReportMetric(rows[len(rows)-1].RecallAvg, "recall-45pct-new")
		b.ReportMetric(rows[len(rows)-1].RecallLossPercent, "recall-loss-pct")
	}
}

func BenchmarkFig11ClusterQuality(b *testing.B) {
	p := experiments.DefaultEffectiveness()
	for i := 0; i < b.N; i++ {
		p.Seed = int64(i + 1)
		rows, err := experiments.Fig11(p, 5)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			switch r.Space {
			case "original":
				b.ReportMetric(r.Ratio, "quality-original")
			case "D_1":
				b.ReportMetric(r.Ratio, "quality-D1")
			case "D_3":
				b.ReportMetric(r.Ratio, "quality-D3")
			}
		}
	}
}

func BenchmarkExtEnergy(b *testing.B) {
	p := experiments.DefaultEnergyParams()
	for i := 0; i < b.N; i++ {
		p.Seed = int64(i + 1)
		rows, err := experiments.ExtEnergy(p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].Joules, "hyperm-joules")
		b.ReportMetric(rows[1].Joules, "can-joules")
		b.ReportMetric(rows[0].MakespanSeconds, "hyperm-makespan-s")
		b.ReportMetric(rows[1].MakespanSeconds, "can-makespan-s")
	}
}

func BenchmarkExtOverlayIndependence(b *testing.B) {
	p := experiments.DefaultEffectiveness()
	for i := 0; i < b.N; i++ {
		p.Seed = int64(i + 1)
		rows, err := experiments.ExtOverlayIndependence(p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].RecallAvg, "recall-can")
		b.ReportMetric(rows[1].RecallAvg, "recall-ring")
	}
}

func BenchmarkExtAggregationPolicy(b *testing.B) {
	p := experiments.DefaultEffectiveness()
	for i := 0; i < b.N; i++ {
		p.Seed = int64(i + 1)
		rows, err := experiments.ExtAggregation(p)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.RecallAvg, "recall-"+r.Policy)
		}
	}
}

func BenchmarkExtLevelsTradeoff(b *testing.B) {
	p := experiments.DefaultEffectiveness()
	for i := 0; i < b.N; i++ {
		p.Seed = int64(i + 1)
		rows, err := experiments.ExtLevels(p, []int{1, 4, 6})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].HopsPerItem, "hops/item-1level")
		b.ReportMetric(rows[1].HopsPerItem, "hops/item-4levels")
		b.ReportMetric(rows[1].RecallBudgeted, "recall-4levels")
		b.ReportMetric(rows[len(rows)-1].RecallBudgeted, "recall-6levels")
	}
}

func BenchmarkExtWaveletConvention(b *testing.B) {
	p := experiments.DefaultEffectiveness()
	for i := 0; i < b.N; i++ {
		p.Seed = int64(i + 1)
		rows, err := experiments.ExtWavelet(p)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.RecallBudgeted, "recall@budget-"+r.Convention)
		}
	}
}

func BenchmarkExtLossRobustness(b *testing.B) {
	p := experiments.DefaultEffectiveness()
	for i := 0; i < b.N; i++ {
		p.Seed = int64(i + 1)
		rows, err := experiments.ExtLoss(p, []float64{0, 0.2, 0.4})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].Recall, "recall-0pct-loss")
		b.ReportMetric(rows[1].Recall, "recall-20pct-loss")
		b.ReportMetric(rows[2].Recall, "recall-40pct-loss")
	}
}

func BenchmarkExtChurn(b *testing.B) {
	p := experiments.DefaultEffectiveness()
	for i := 0; i < b.N; i++ {
		p.Seed = int64(i + 1)
		rows, err := experiments.ExtChurn(p, []float64{0, 0.3})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[1].RecallVsAll, "recall-vs-all-30pct-churn")
		b.ReportMetric(rows[1].RecallVsSurviving, "recall-vs-surviving-30pct-churn")
	}
}

// benchmarkPublish times PublishAll alone — the per-peer decompose+cluster
// math plus the serial overlay insertion — on a fresh default-scale system
// each iteration, at the given Parallelism. System construction (data
// generation, overlay join, bounds) happens off the clock.
func benchmarkPublish(b *testing.B, parallelism int) {
	p := experiments.DefaultParams()
	p.Parallelism = parallelism
	b.ReportAllocs()
	var items, hops int
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		p.Seed = int64(i + 1)
		sys, err := experiments.BuildMarkovSystem(p)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		st := sys.PublishAll()
		items += sys.TotalItems()
		hops += st.Hops
	}
	b.ReportMetric(float64(items)/b.Elapsed().Seconds(), "items/s")
	b.ReportMetric(float64(hops)/float64(items), "hops/item")
}

// BenchmarkPublishThroughput is the serial baseline (Parallelism 1).
func BenchmarkPublishThroughput(b *testing.B) { benchmarkPublish(b, 1) }

// BenchmarkPublishThroughputParallel fans the per-peer preparation across all
// cores (Parallelism 0 = GOMAXPROCS). The published systems are byte-identical
// to the serial baseline's; only the wall clock differs.
func BenchmarkPublishThroughputParallel(b *testing.B) { benchmarkPublish(b, 0) }
