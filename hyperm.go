// Package hyperm is a from-scratch Go implementation of Hyper-M
// (Lupu, Li, Ooi, Shi: "Clustering wavelets to speed-up data dissemination
// in structured P2P MANETs", ICDE 2007): fast publication of large
// high-dimensional collections into a structured peer-to-peer overlay by
// announcing wavelet-space cluster summaries instead of individual items,
// with approximate similarity search on top.
//
// The package is a simulation library: peers, overlays and radios are all
// in-process and deterministic under a seed, which is what makes the
// paper's experiments reproducible (see internal/experiments and
// EXPERIMENTS.md). The public API wraps the core pipeline:
//
//	net, err := hyperm.New(hyperm.Options{
//		Peers: 50, Dim: 64, Levels: 4, ClustersPerPeer: 10, Seed: 1,
//	})
//	net.AddItems(peer, ids, vectors)   // local, per device
//	report, err := net.Publish()       // DWT -> k-means -> overlay insert
//	ans, err := net.Range(0, q, 0.1)   // no false dismissals
//	ans, err := net.KNN(0, q, 10)      // Fig 5 heuristic
//
// Item vectors must all share the configured power-of-two dimensionality;
// item ids are caller-chosen and must be globally unique.
package hyperm

import (
	"fmt"
	"math/rand"

	"hyperm/internal/baton"
	"hyperm/internal/can"
	"hyperm/internal/core"
	"hyperm/internal/overlay"
	"hyperm/internal/ring"
	"hyperm/internal/wavelet"
)

// OverlayKind selects the structured overlay substrate.
type OverlayKind int

const (
	// CAN is the paper's substrate: a d-torus Content-Addressable Network
	// per wavelet level.
	CAN OverlayKind = iota
	// Ring is a Chord-style ring with a z-order key mapping, demonstrating
	// Hyper-M's overlay independence (§5).
	Ring
	// Baton is a BATON-style balanced-tree overlay (Jagadish et al., VLDB
	// 2005) with the same z-order mapping — the first alternative substrate
	// the paper names.
	Baton
)

// String names the overlay kind.
func (k OverlayKind) String() string {
	switch k {
	case CAN:
		return "CAN"
	case Ring:
		return "ring"
	case Baton:
		return "BATON"
	default:
		return fmt.Sprintf("OverlayKind(%d)", int(k))
	}
}

// Aggregation re-exports the score-aggregation policy (§3.2).
type Aggregation = core.Aggregation

// Score aggregation policies. AggMin is the paper's default.
const (
	AggMin  = core.AggMin
	AggSum  = core.AggSum
	AggMean = core.AggMean
)

// Wavelet re-exports the multiresolution convention.
type Wavelet = wavelet.Convention

// Wavelet conventions. HaarAveraging is the paper's default; Daubechies4
// compacts smooth signals better at identical retrieval guarantees.
const (
	HaarAveraging   = wavelet.Averaging
	HaarOrthonormal = wavelet.Orthonormal
	Daubechies4     = wavelet.Daubechies4
)

// PeerScore re-exports the scored-peer pair returned by queries.
type PeerScore = core.PeerScore

// Options configures a Hyper-M network.
type Options struct {
	// Peers is the number of devices (required, >= 1).
	Peers int
	// Dim is the item dimensionality; must be a power of two (required).
	Dim int
	// Levels is the number of wavelet subspaces/overlays (default 4, the
	// paper's sweet spot; max log2(Dim)+1).
	Levels int
	// ClustersPerPeer is K_p, the per-level summary budget (default 10).
	ClustersPerPeer int
	// C is the k-nn over-fetch knob (default 1; the paper recommends
	// values in [1, 2]).
	C float64
	// Aggregation is the score-combination policy (default AggMin).
	Aggregation Aggregation
	// Overlay selects the substrate (default CAN).
	Overlay OverlayKind
	// Wavelet selects the multiresolution convention (default
	// HaarAveraging, the paper's).
	Wavelet Wavelet
	// Seed drives every random choice; equal seeds give identical networks.
	Seed int64
	// Parallelism bounds the worker goroutines used for the per-peer
	// publication math (wavelet decomposition and clustering). 0 uses all
	// cores, 1 forces serial execution. The published network is
	// byte-identical for every setting — parallelism changes wall-clock
	// time only, never results.
	Parallelism int
}

// Network is a simulated Hyper-M deployment.
type Network struct {
	sys       *core.System
	opts      Options
	published bool
	usedIDs   map[int]bool
}

// PublishReport summarizes the cost of announcing all peer data.
type PublishReport struct {
	// Clusters is the number of cluster spheres inserted across overlays.
	Clusters int
	// OverlayHops is the total routing + replication cost.
	OverlayHops int
	// HopsPerLevel breaks the cost down by wavelet level.
	HopsPerLevel []int
	// Items is the number of items the summaries cover.
	Items int
}

// HopsPerItem is the paper's headline metric: overlay hops per data item
// disseminated.
func (r PublishReport) HopsPerItem() float64 {
	if r.Items == 0 {
		return 0
	}
	return float64(r.OverlayHops) / float64(r.Items)
}

// RangeAnswer is the result of a Range query.
type RangeAnswer struct {
	// Items holds the ids of every retrieved item, ascending. All of them
	// truly lie within the radius (precision 1.0).
	Items []int
	// Scores ranks the candidate peers (descending aggregated relevance).
	Scores []PeerScore
	// PeersContacted and OverlayHops account the query cost.
	PeersContacted int
	OverlayHops    int
}

// KNNAnswer is the result of a KNN query.
type KNNAnswer struct {
	// Items holds the fetched item ids ordered by ascending true distance;
	// take the first k as the answer.
	Items []int
	// Scores ranks the candidate peers.
	Scores []PeerScore
	// PeersContacted and OverlayHops account the query cost.
	PeersContacted int
	OverlayHops    int
}

// New builds the per-level overlays and an empty network.
func New(opts Options) (*Network, error) {
	if opts.Levels == 0 {
		opts.Levels = 4
	}
	if opts.Dim > 0 && wavelet.IsPow2(opts.Dim) {
		if max := wavelet.NumSubspaces(opts.Dim); opts.Levels > max {
			opts.Levels = max
		}
	}
	if opts.ClustersPerPeer == 0 {
		opts.ClustersPerPeer = 10
	}
	var factory core.OverlayFactory
	switch opts.Overlay {
	case CAN:
		factory = func(level, keyDim, peers int) (overlay.Network, error) {
			return can.Build(can.Config{
				Nodes: peers, Dim: keyDim,
				Rng: rand.New(rand.NewSource(opts.Seed*7919 + int64(level))),
			})
		}
	case Ring:
		factory = func(level, keyDim, peers int) (overlay.Network, error) {
			return ring.Build(ring.Config{
				Nodes: peers, Dim: keyDim,
				Rng: rand.New(rand.NewSource(opts.Seed*7919 + int64(level))),
			})
		}
	case Baton:
		factory = func(level, keyDim, peers int) (overlay.Network, error) {
			return baton.Build(baton.Config{
				Nodes: peers, Dim: keyDim,
				Rng: rand.New(rand.NewSource(opts.Seed*7919 + int64(level))),
			})
		}
	default:
		return nil, fmt.Errorf("hyperm: unknown overlay kind %v", opts.Overlay)
	}
	sys, err := core.NewSystem(core.Config{
		Peers:           opts.Peers,
		Dim:             opts.Dim,
		Levels:          opts.Levels,
		ClustersPerPeer: opts.ClustersPerPeer,
		C:               opts.C,
		Aggregation:     opts.Aggregation,
		Convention:      opts.Wavelet,
		Factory:         factory,
		Rng:             rand.New(rand.NewSource(opts.Seed + 1)),
		Parallelism:     opts.Parallelism,
	})
	if err != nil {
		return nil, fmt.Errorf("hyperm: %w", err)
	}
	return &Network{sys: sys, opts: opts, usedIDs: make(map[int]bool)}, nil
}

// Peers returns the network size.
func (n *Network) Peers() int { return n.opts.Peers }

// Items returns the total number of items across all peers.
func (n *Network) Items() int { return n.sys.TotalItems() }

// AddItems stores vectors (with caller-chosen unique ids) on a peer's
// device. It must be called before Publish; afterwards, use Insert.
func (n *Network) AddItems(peer int, ids []int, vectors [][]float64) error {
	if err := n.checkPeer(peer); err != nil {
		return err
	}
	if len(ids) != len(vectors) {
		return fmt.Errorf("hyperm: %d ids for %d vectors", len(ids), len(vectors))
	}
	if n.published {
		return fmt.Errorf("hyperm: network already published; use Insert for late additions")
	}
	for i, v := range vectors {
		if len(v) != n.opts.Dim {
			return fmt.Errorf("hyperm: vector %d has dim %d, want %d", i, len(v), n.opts.Dim)
		}
		if n.usedIDs[ids[i]] {
			return fmt.Errorf("hyperm: duplicate item id %d", ids[i])
		}
	}
	for _, id := range ids {
		n.usedIDs[id] = true
	}
	n.sys.AddPeerData(peer, ids, vectors)
	return nil
}

// Publish runs the Hyper-M insertion pipeline (Fig 2) for every peer:
// wavelet decomposition, per-level k-means, and overlay insertion of the
// cluster summaries.
func (n *Network) Publish() (PublishReport, error) {
	if n.published {
		return PublishReport{}, fmt.Errorf("hyperm: already published")
	}
	if n.sys.TotalItems() == 0 {
		return PublishReport{}, fmt.Errorf("hyperm: no items added")
	}
	n.sys.DeriveBounds()
	st := n.sys.PublishAll()
	n.published = true
	return PublishReport{
		Clusters:     st.ClustersPublished,
		OverlayHops:  st.Hops,
		HopsPerLevel: st.HopsPerLevel,
		Items:        n.sys.TotalItems(),
	}, nil
}

// Insert adds one item after publication without re-announcing summaries
// (the paper's short-network-lifetime setting, Fig 10c). Retrieval quality
// for the new item degrades gracefully; existing items are unaffected.
func (n *Network) Insert(peer, id int, vector []float64) error {
	if err := n.checkPeer(peer); err != nil {
		return err
	}
	if !n.published {
		return fmt.Errorf("hyperm: not yet published; use AddItems")
	}
	if len(vector) != n.opts.Dim {
		return fmt.Errorf("hyperm: vector has dim %d, want %d", len(vector), n.opts.Dim)
	}
	if n.usedIDs[id] {
		return fmt.Errorf("hyperm: duplicate item id %d", id)
	}
	n.usedIDs[id] = true
	n.sys.PostInsert(peer, id, vector)
	return nil
}

// FailPeer models a device crashing or leaving radio range after
// publication: it stops answering fetches and its overlay storage is lost.
// Returns the number of index records lost. Irreversible.
func (n *Network) FailPeer(peer int) (recordsLost int, err error) {
	if err := n.checkPeer(peer); err != nil {
		return 0, err
	}
	if !n.published {
		return 0, fmt.Errorf("hyperm: not yet published")
	}
	return n.sys.FailPeer(peer), nil
}

// AlivePeers returns how many peers have not failed.
func (n *Network) AlivePeers() int { return n.sys.AlivePeers() }

// LeavePeer models a graceful departure: the device's items leave with it,
// but the index records it stored are handed to neighbors first (the CAN
// departure protocol), so other peers' summaries survive intact. Returns the
// number of handover messages.
func (n *Network) LeavePeer(peer int) (handoverMsgs int, err error) {
	if err := n.checkPeer(peer); err != nil {
		return 0, err
	}
	if !n.published {
		return 0, fmt.Errorf("hyperm: not yet published")
	}
	return n.sys.LeavePeer(peer)
}

// Lookup is an exact point query: it returns the ids of items exactly equal
// to the query vector (§4's "point queries are straightforward").
func (n *Network) Lookup(fromPeer int, query []float64) ([]int, error) {
	ans, err := n.Range(fromPeer, query, 0)
	if err != nil {
		return nil, err
	}
	return ans.Items, nil
}

// Range retrieves every item within radius of query, contacting all
// positively scored peers (no false dismissals under AggMin).
func (n *Network) Range(fromPeer int, query []float64, radius float64) (RangeAnswer, error) {
	return n.RangeBudget(fromPeer, query, radius, 0)
}

// RangeBudget is Range with a cap on the number of peers contacted
// (0 = unlimited). Precision stays 1.0; recall depends on the budget.
func (n *Network) RangeBudget(fromPeer int, query []float64, radius float64, maxPeers int) (RangeAnswer, error) {
	if err := n.checkQuery(fromPeer, query); err != nil {
		return RangeAnswer{}, err
	}
	if radius < 0 {
		return RangeAnswer{}, fmt.Errorf("hyperm: negative radius")
	}
	res := n.sys.RangeQuery(fromPeer, query, radius, core.RangeOptions{MaxPeers: maxPeers})
	return RangeAnswer{
		Items:          res.Items,
		Scores:         res.Scores,
		PeersContacted: res.PeersContacted,
		OverlayHops:    res.OverlayHops,
	}, nil
}

// KNN retrieves (approximately) the k items closest to query using the
// paper's Figure 5 heuristic.
func (n *Network) KNN(fromPeer int, query []float64, k int) (KNNAnswer, error) {
	return n.KNNWithC(fromPeer, query, k, 0)
}

// KNNWithC is KNN with an explicit over-fetch knob C (0 uses the network
// default). Larger C trades bandwidth and precision for recall.
func (n *Network) KNNWithC(fromPeer int, query []float64, k int, c float64) (KNNAnswer, error) {
	if err := n.checkQuery(fromPeer, query); err != nil {
		return KNNAnswer{}, err
	}
	if k < 1 {
		return KNNAnswer{}, fmt.Errorf("hyperm: k must be >= 1, got %d", k)
	}
	if c < 0 {
		return KNNAnswer{}, fmt.Errorf("hyperm: C must be >= 0, got %v", c)
	}
	res := n.sys.KNNQuery(fromPeer, query, k, core.KNNOptions{C: c})
	return KNNAnswer{
		Items:          res.Items,
		Scores:         res.Scores,
		PeersContacted: res.PeersContacted,
		OverlayHops:    res.OverlayHops,
	}, nil
}

func (n *Network) checkPeer(peer int) error {
	if peer < 0 || peer >= n.opts.Peers {
		return fmt.Errorf("hyperm: peer %d out of range [0,%d)", peer, n.opts.Peers)
	}
	return nil
}

func (n *Network) checkQuery(fromPeer int, query []float64) error {
	if err := n.checkPeer(fromPeer); err != nil {
		return err
	}
	if !n.published {
		return fmt.Errorf("hyperm: not yet published")
	}
	if len(query) != n.opts.Dim {
		return fmt.Errorf("hyperm: query has dim %d, want %d", len(query), n.opts.Dim)
	}
	return nil
}
