module hyperm

go 1.22
