package hyperm

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"hyperm/internal/dataset"
)

// buildNet creates a small published network over ALOI-like data and returns
// it with the corpus.
func buildNet(t testing.TB, kind OverlayKind) (*Network, [][]float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	data, labels := dataset.ALOI(dataset.ALOIConfig{Objects: 30, Views: 8, Bins: 32}, rng)
	net, err := New(Options{Peers: 10, Dim: 32, Levels: 3, ClustersPerPeer: 4, Overlay: kind, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range data {
		if err := net.AddItems(labels[i]%10, []int{i}, [][]float64{x}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := net.Publish(); err != nil {
		t.Fatal(err)
	}
	return net, data
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{Peers: 0, Dim: 32}); err == nil {
		t.Error("expected error for zero peers")
	}
	if _, err := New(Options{Peers: 2, Dim: 33}); err == nil {
		t.Error("expected error for non-pow2 dim")
	}
	if _, err := New(Options{Peers: 2, Dim: 32, Overlay: OverlayKind(9)}); err == nil {
		t.Error("expected error for unknown overlay")
	}
}

func TestDefaultsApplied(t *testing.T) {
	net, err := New(Options{Peers: 3, Dim: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Dim 8 has 4 subspaces; default Levels=4 fits exactly.
	if net.opts.Levels != 4 || net.opts.ClustersPerPeer != 10 {
		t.Errorf("defaults not applied: %+v", net.opts)
	}
	// Dim 4 has only 3 subspaces; Levels must clamp.
	net2, err := New(Options{Peers: 3, Dim: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if net2.opts.Levels != 3 {
		t.Errorf("Levels should clamp to 3 for Dim=4, got %d", net2.opts.Levels)
	}
}

func TestLifecycleErrors(t *testing.T) {
	net, err := New(Options{Peers: 2, Dim: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	v := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	if _, err := net.Publish(); err == nil {
		t.Error("publish with no items should fail")
	}
	if _, err := net.Range(0, v, 1); err == nil {
		t.Error("query before publish should fail")
	}
	if err := net.Insert(0, 1, v); err == nil {
		t.Error("Insert before publish should fail")
	}
	if err := net.AddItems(5, []int{0}, [][]float64{v}); err == nil {
		t.Error("out-of-range peer should fail")
	}
	if err := net.AddItems(0, []int{0}, [][]float64{{1}}); err == nil {
		t.Error("wrong dim should fail")
	}
	if err := net.AddItems(0, []int{0, 1}, [][]float64{v}); err == nil {
		t.Error("id/vector length mismatch should fail")
	}
	if err := net.AddItems(0, []int{0}, [][]float64{v}); err != nil {
		t.Fatal(err)
	}
	if err := net.AddItems(1, []int{0}, [][]float64{v}); err == nil {
		t.Error("duplicate id should fail")
	}
	if _, err := net.Publish(); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Publish(); err == nil {
		t.Error("double publish should fail")
	}
	if err := net.AddItems(0, []int{2}, [][]float64{v}); err == nil {
		t.Error("AddItems after publish should fail")
	}
	if err := net.Insert(0, 0, v); err == nil {
		t.Error("duplicate id on Insert should fail")
	}
	if err := net.Insert(0, 3, v); err != nil {
		t.Errorf("valid Insert failed: %v", err)
	}
	if _, err := net.Range(0, []float64{1}, 1); err == nil {
		t.Error("wrong query dim should fail")
	}
	if _, err := net.Range(0, v, -1); err == nil {
		t.Error("negative radius should fail")
	}
	if _, err := net.KNN(0, v, 0); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := net.KNNWithC(0, v, 2, -1); err == nil {
		t.Error("negative C should fail")
	}
}

func TestEndToEndRangeAndKNN(t *testing.T) {
	for _, kind := range []OverlayKind{CAN, Ring, Baton} {
		t.Run(kind.String(), func(t *testing.T) {
			net, data := buildNet(t, kind)
			q := data[17]
			ans, err := net.Range(0, q, 0.08)
			if err != nil {
				t.Fatal(err)
			}
			if !sort.IntsAreSorted(ans.Items) {
				t.Error("Range items not sorted")
			}
			found := false
			for _, id := range ans.Items {
				if id == 17 {
					found = true
				}
			}
			if !found {
				t.Error("Range missed the query item itself")
			}
			knn, err := net.KNN(0, q, 5)
			if err != nil {
				t.Fatal(err)
			}
			if len(knn.Items) == 0 || knn.Items[0] != 17 {
				t.Errorf("KNN top hit = %v, want item 17", knn.Items)
			}
			if knn.PeersContacted < 1 || ans.PeersContacted < 1 {
				t.Error("queries should contact at least one peer")
			}
		})
	}
}

func TestPublishReport(t *testing.T) {
	net, _ := buildNet(t, CAN)
	// buildNet already published; rebuild to capture the report.
	net2, data := func() (*Network, [][]float64) {
		rng := rand.New(rand.NewSource(6))
		data, labels := dataset.ALOI(dataset.ALOIConfig{Objects: 20, Views: 6, Bins: 32}, rng)
		n, err := New(Options{Peers: 8, Dim: 32, Levels: 3, ClustersPerPeer: 4, Seed: 6})
		if err != nil {
			t.Fatal(err)
		}
		for i, x := range data {
			if err := n.AddItems(labels[i]%8, []int{i}, [][]float64{x}); err != nil {
				t.Fatal(err)
			}
		}
		return n, data
	}()
	rep, err := net2.Publish()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Items != len(data) {
		t.Errorf("report items %d, want %d", rep.Items, len(data))
	}
	if rep.Clusters == 0 || rep.Clusters > 8*3*4 {
		t.Errorf("clusters = %d out of expected range", rep.Clusters)
	}
	if len(rep.HopsPerLevel) != 3 {
		t.Errorf("HopsPerLevel has %d entries", len(rep.HopsPerLevel))
	}
	if rep.HopsPerItem() <= 0 {
		t.Errorf("HopsPerItem = %v", rep.HopsPerItem())
	}
	if (PublishReport{}).HopsPerItem() != 0 {
		t.Error("empty report HopsPerItem should be 0")
	}
	_ = net
}

func TestDeterminism(t *testing.T) {
	run := func() []int {
		net, data := buildNet(t, CAN)
		ans, err := net.Range(0, data[3], 0.1)
		if err != nil {
			t.Fatal(err)
		}
		return ans.Items
	}
	a, b := run(), run()
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Errorf("same seed gave different answers: %v vs %v", a, b)
	}
}

func TestOverlayKindString(t *testing.T) {
	if CAN.String() != "CAN" || Ring.String() != "ring" || Baton.String() != "BATON" || OverlayKind(7).String() == "" {
		t.Error("OverlayKind String broken")
	}
}

// ExampleNew demonstrates the minimal end-to-end flow.
func ExampleNew() {
	net, err := New(Options{Peers: 4, Dim: 8, Levels: 3, ClustersPerPeer: 2, Seed: 42})
	if err != nil {
		panic(err)
	}
	// Two peers with two items each.
	net.AddItems(0, []int{0, 1}, [][]float64{
		{1, 1, 1, 1, 0, 0, 0, 0},
		{0, 0, 0, 0, 1, 1, 1, 1},
	})
	net.AddItems(1, []int{2, 3}, [][]float64{
		{1, 1, 1, 1, 0.1, 0, 0, 0},
		{5, 5, 5, 5, 5, 5, 5, 5},
	})
	if _, err := net.Publish(); err != nil {
		panic(err)
	}
	ans, err := net.Range(0, []float64{1, 1, 1, 1, 0, 0, 0, 0}, 0.2)
	if err != nil {
		panic(err)
	}
	fmt.Println(ans.Items)
	// Output: [0 2]
}

func TestWaveletOptionEndToEnd(t *testing.T) {
	for _, w := range []Wavelet{HaarAveraging, HaarOrthonormal, Daubechies4} {
		t.Run(w.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(5))
			data, labels := dataset.ALOI(dataset.ALOIConfig{Objects: 20, Views: 6, Bins: 32}, rng)
			net, err := New(Options{Peers: 8, Dim: 32, Levels: 3, ClustersPerPeer: 4,
				Wavelet: w, Seed: 5})
			if err != nil {
				t.Fatal(err)
			}
			for i, x := range data {
				if err := net.AddItems(labels[i]%8, []int{i}, [][]float64{x}); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := net.Publish(); err != nil {
				t.Fatal(err)
			}
			ans, err := net.Range(0, data[5], 0.05)
			if err != nil {
				t.Fatal(err)
			}
			found := false
			for _, id := range ans.Items {
				if id == 5 {
					found = true
				}
			}
			if !found {
				t.Errorf("convention %v missed the query item", w)
			}
		})
	}
}

func TestFailPeer(t *testing.T) {
	net, data := buildNet(t, CAN)
	if net.AlivePeers() != 10 {
		t.Fatalf("AlivePeers = %d", net.AlivePeers())
	}
	if _, err := net.FailPeer(99); err == nil {
		t.Error("out-of-range FailPeer should error")
	}
	lost, err := net.FailPeer(3)
	if err != nil {
		t.Fatal(err)
	}
	if lost == 0 {
		t.Error("failing a publishing peer should lose index records")
	}
	if net.AlivePeers() != 9 {
		t.Errorf("AlivePeers = %d after one failure", net.AlivePeers())
	}
	// Failing twice is a no-op.
	lost2, err := net.FailPeer(3)
	if err != nil || lost2 != 0 {
		t.Errorf("double failure: lost=%d err=%v", lost2, err)
	}
	// Queries still work and never return the dead peer's items.
	ans, err := net.Range(0, data[0], 0.15)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ans.Items {
		// buildNet assigns item i to peer labels[i]%10 where labels[i]=i/8.
		if (id/8)%10 == 3 {
			t.Errorf("item %d belongs to the failed peer but was returned", id)
		}
	}
}

func TestFailPeerBeforePublishErrors(t *testing.T) {
	net, err := New(Options{Peers: 2, Dim: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.FailPeer(0); err == nil {
		t.Error("FailPeer before publish should error")
	}
}

func TestLeavePeerGraceful(t *testing.T) {
	net, data := buildNet(t, CAN)
	msgs, err := net.LeavePeer(4)
	if err != nil {
		t.Fatal(err)
	}
	if msgs == 0 {
		t.Error("graceful leave should hand records over")
	}
	if net.AlivePeers() != 9 {
		t.Errorf("AlivePeers = %d", net.AlivePeers())
	}
	if _, err := net.LeavePeer(4); err == nil {
		t.Error("double leave should error")
	}
	// Graceful leave preserves other peers' summaries: survivors' items
	// remain perfectly retrievable (no false dismissals).
	rng := rand.New(rand.NewSource(60))
	for trial := 0; trial < 8; trial++ {
		qi := rng.Intn(len(data))
		if (qi/8)%10 == 4 {
			continue // the departed peer's items are gone with it
		}
		ans, err := net.Range(0, data[qi], 0.001)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, id := range ans.Items {
			if id == qi {
				found = true
			}
		}
		if !found {
			t.Fatalf("survivor item %d lost after graceful departure", qi)
		}
	}
}

func TestLookup(t *testing.T) {
	net, data := buildNet(t, CAN)
	ids, err := net.Lookup(0, data[9])
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, id := range ids {
		if id == 9 {
			found = true
		}
	}
	if !found {
		t.Errorf("Lookup missed exact item: %v", ids)
	}
}
