// Command hyperm-load is the closed-loop load harness of the serving
// runtime: it boots a local cluster of serving nodes (one per peer of a
// deterministic workload), then drives a mixed publish/range/kNN request
// stream from N client goroutines and reports throughput and latency
// percentiles.
//
// Usage:
//
//	hyperm-load                       # 8 nodes, 10k requests, TCP loopback
//	hyperm-load -transport chan       # in-process transport
//	hyperm-load -out BENCH_serve.json # also write the benchio artifact
//
// The mix is 10% publish, 45% range, 45% kNN, assigned deterministically by
// request index. The process exits non-zero if any request fails — the
// zero-errors contract of the serving runtime's acceptance check.
//
// With -churn the run doubles as an availability probe: a churn driver joins,
// gracefully leaves, and crashes nodes at the given interval while the client
// load keeps flowing (requests only target currently-alive nodes). Mid-churn
// failures are then expected — a request can race a takeover — so the run
// reports the availability fraction in an extra "availability" row instead of
// failing on the first error.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hyperm/internal/benchio"
	"hyperm/internal/can"
	"hyperm/internal/core"
	"hyperm/internal/experiments"
	"hyperm/internal/membership"
	"hyperm/internal/node"
	"hyperm/internal/transport"
	"hyperm/internal/vec"
)

// ServeBenchRow is one op-class measurement of a load run (op "all" is the
// aggregate row carrying the overall QPS). Written as BENCH_serve.json under
// the shared benchio envelope.
type ServeBenchRow struct {
	// Op is "publish", "range", "knn", or "all".
	Op string `json:"op"`
	// Transport is the substrate ("tcp" or "chan").
	Transport string `json:"transport"`
	// Nodes and Clients describe the cluster and the offered load.
	Nodes   int `json:"nodes"`
	Clients int `json:"clients"`
	// Requests and Errors count this op's completions and failures.
	Requests int `json:"requests"`
	Errors   int `json:"errors"`
	// Seconds is the whole run's wall-clock time (same on every row).
	Seconds float64 `json:"seconds"`
	// QPS is Requests/Seconds for this op class.
	QPS float64 `json:"qps"`
	// P50/P95/P99Ms are latency percentiles in milliseconds.
	P50Ms float64 `json:"p50_ms"`
	P95Ms float64 `json:"p95_ms"`
	P99Ms float64 `json:"p99_ms"`
	// ErrorClasses breaks Errors down by failure class: the routing-core
	// detail tokens ("route/loop-limit", "route/no-neighbor") vs plain
	// remote errors ("remote") vs transport-level failures ("transport").
	// Omitted when the run is clean.
	ErrorClasses map[string]int `json:"error_classes,omitempty"`
	// Availability is the fraction of requests that succeeded; set only on
	// the "availability" row of churn runs (-churn > 0).
	Availability float64 `json:"availability,omitempty"`
	// ChurnEvents counts the membership events the churn driver executed
	// ("join", "leave", "crash"); set only on the "availability" row.
	ChurnEvents map[string]int `json:"churn_events,omitempty"`
	// Alpha is the lookup coordinator's α (concurrent can_search probes).
	Alpha int `json:"alpha,omitempty"`
	// OfferedQPS is the open-loop arrival rate; set on "sweep" rows (and on
	// the main rows of a -rate run), 0 for closed-loop rows.
	OfferedQPS float64 `json:"offered_qps,omitempty"`
	// ZipfS and RepeatFrac describe the query-popularity skew: the Zipf
	// exponent of the per-request query draw (0 = uniform) and the fraction of
	// requests that repeat the previous request's query.
	ZipfS      float64 `json:"zipf_s,omitempty"`
	RepeatFrac float64 `json:"repeat_frac,omitempty"`
	// CacheViews/CacheSize/HotReplicate record the view-cache tuning the
	// cluster ran with, so every row names its configuration. Affinity records
	// the client routing policy: queries hashed to a coordinator (true) vs
	// uniformly random coordinators (false).
	CacheViews   bool `json:"cache_views,omitempty"`
	CacheSize    int  `json:"cache_size,omitempty"`
	HotReplicate bool `json:"hot_replicate,omitempty"`
	Affinity     bool `json:"affinity,omitempty"`
	// Cache telemetry, aggregated across all nodes for this row's phase
	// (the main run or one sweep phase). Zero when caching is off.
	CacheHits          float64 `json:"cache_hits,omitempty"`
	CacheMisses        float64 `json:"cache_misses,omitempty"`
	CacheRevalidations float64 `json:"cache_revalidations,omitempty"`
	CacheEvictions     float64 `json:"cache_evictions,omitempty"`
	CacheEpochStale    float64 `json:"cache_epoch_stale,omitempty"`
	ReplicaHits        float64 `json:"replica_hits,omitempty"`
	// CacheHitRate is the fraction of cache-mediated view probes served
	// without a full can_search fetch: (hits + replica hits + revalidation
	// reuses) over all probes.
	CacheHitRate float64 `json:"cache_hit_rate,omitempty"`
	// PathHits/PathMisses count whole level searches served from the lookup
	// memo (no machine run, no view probes at all) vs run live;
	// LookupHitRate is their ratio — under query affinity this, not the
	// per-view rate, is the cache's serving hit-rate, because a memo hit
	// answers the entire search before a single view is probed.
	PathHits      float64 `json:"path_hits,omitempty"`
	PathMisses    float64 `json:"path_misses,omitempty"`
	LookupHitRate float64 `json:"lookup_hit_rate,omitempty"`
	// CanSearchPerQuery is the mean number of can_search RPCs per request in
	// this row's phase — the directly observable work the cache removes.
	CanSearchPerQuery float64 `json:"can_search_per_query,omitempty"`
	// Fetch-cache telemetry: FetchLocalHits counts phase-two fetches the
	// coordinator answered from its own memo (no RPC at all), FetchMemoHits
	// counts fetch RPCs the holder answered from its encoded-response memo
	// (no scan), and FetchInvalidations counts publish-driven invalidation
	// notifications processed by subscribers.
	FetchLocalHits     float64 `json:"fetch_local_hits,omitempty"`
	FetchMemoHits      float64 `json:"fetch_memo_hits,omitempty"`
	FetchInvalidations float64 `json:"fetch_invalidations,omitempty"`
	// FetchHitRate is the fraction of phase-two fetches served without an
	// RPC; FetchPerQuery is the mean number of fetch RPCs actually issued per
	// request — with the coordinator memo warm, repeat queries drive this
	// toward zero.
	FetchHitRate  float64 `json:"fetch_hit_rate,omitempty"`
	FetchPerQuery float64 `json:"fetch_per_query,omitempty"`
	// AggFanout/AggDepth/WarmPush record the delegation tuning the cluster
	// ran with (0 = serial reference, no can_search_agg).
	AggFanout int `json:"agg_fanout,omitempty"`
	AggDepth  int `json:"agg_depth,omitempty"`
	WarmPush  int `json:"warm_push,omitempty"`
	// CoordPerQuery is the mean number of lookup-coordinator RPCs per request
	// in this row's phase — can_search fetches + can_search_agg delegations +
	// version probes, the budget the delegation tentpole collapses from Θ(N).
	// AggPerQuery is the delegation share of it, and GatheredPerQuery the
	// mean number of piggybacked views those delegations returned.
	CoordPerQuery    float64 `json:"coord_per_query,omitempty"`
	AggPerQuery      float64 `json:"agg_per_query,omitempty"`
	GatheredPerQuery float64 `json:"gathered_per_query,omitempty"`
	// WarmPushes/WarmInstalls count proactive warm_views pushes sent and
	// installed cluster-wide during this row's phase.
	WarmPushes   float64 `json:"warm_pushes,omitempty"`
	WarmInstalls float64 `json:"warm_installs,omitempty"`
	// StreamPublish/ReclusterEvery record the incremental-publish tuning the
	// cluster ran with; PublishRate is the offered rate of the -publish-rate
	// open-loop ingest driver (its completions are the "ingest" row).
	StreamPublish  bool    `json:"stream_publish,omitempty"`
	ReclusterEvery int     `json:"recluster_every,omitempty"`
	PublishRate    float64 `json:"publish_rate,omitempty"`
	// StoreRecPerPublish is the mean number of store_rec announcement RPCs one
	// publish issued during the main phase (set on the "all" row of
	// -stream-publish runs) — the O(changed clusters) payload: an absorb or
	// grow touches one record per level, only splits and re-clusters ship
	// more, versus a full republish shipping every cluster of every level.
	StoreRecPerPublish float64 `json:"store_rec_per_publish,omitempty"`
	// Memory-scale telemetry, set on the "all" row: HeapBytes is the process
	// live heap (runtime HeapAlloc) at the end of the main phase, StoreBytes
	// the summed flat-store footprint of every node's item store, StoreItems
	// the items those stores hold, StoreBytesPerItem their ratio, and
	// GCPauseP99Ms the p99 stop-the-world pause across the phase's GC cycles.
	HeapBytes         uint64  `json:"heap_bytes,omitempty"`
	StoreBytes        int     `json:"store_bytes,omitempty"`
	StoreItems        int     `json:"store_items,omitempty"`
	StoreBytesPerItem float64 `json:"store_bytes_per_item,omitempty"`
	GCPauseP99Ms      float64 `json:"gc_pause_p99_ms,omitempty"`
}

// errorClass buckets one failed request. Routing stalls carry their
// machine-readable detail token across the wire (see route.Detail*); any
// other handler refusal is "remote"; everything else — unreachable endpoint,
// retry budget exhausted, deadline — is "transport".
func errorClass(err error) string {
	if detail := transport.ErrorDetail(err); detail != "" {
		return detail
	}
	var re *transport.RemoteError
	if errors.As(err, &re) {
		return "remote"
	}
	return "transport"
}

type sample struct {
	op  int // 0 publish, 1 range, 2 knn
	dur time.Duration
	err error
}

var opNames = [3]string{"publish", "range", "knn"}

// opFor assigns ops deterministically by request index: 1 publish, then
// alternating range/kNN — a 10/45/45 mix at every scale.
func opFor(i int64) int {
	switch m := i % 10; {
	case m == 0:
		return 0
	case m%2 == 1:
		return 1
	default:
		return 2
	}
}

func percentile(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return float64(sorted[idx]) / float64(time.Millisecond)
}

// gcPauseP99 returns the p99 stop-the-world pause in milliseconds across the
// GC cycles between two MemStats snapshots. The runtime's PauseNs ring keeps
// the last 256 cycles, so a very long phase reports the tail's p99 — exactly
// the recent-steady-state number the bench wants.
func gcPauseP99(base, end *runtime.MemStats) float64 {
	n := int(end.NumGC - base.NumGC)
	if n == 0 {
		return 0
	}
	if n > len(end.PauseNs) {
		n = len(end.PauseNs)
	}
	pauses := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		pauses = append(pauses, float64(end.PauseNs[(int(end.NumGC)-1-i+len(end.PauseNs)*4)%len(end.PauseNs)]))
	}
	sort.Float64s(pauses)
	return pauses[int(0.99*float64(len(pauses)-1))] / 1e6
}

func main() { os.Exit(run()) }

func run() int {
	nodes := flag.Int("nodes", 8, "cluster size (peers)")
	requests := flag.Int("requests", 10000, "total requests to issue")
	clients := flag.Int("clients", 8, "closed-loop client goroutines")
	transportName := flag.String("transport", "tcp", "substrate: 'tcp' (loopback sockets) or 'chan' (in-process)")
	itemsPerPeer := flag.Int("items", 40, "items per peer in the workload")
	dim := flag.Int("dim", 32, "data dimensionality (power of two)")
	levels := flag.Int("levels", 3, "wavelet levels / overlays")
	clustersPerPeer := flag.Int("clusters", 4, "published clusters per peer per level")
	k := flag.Int("k", 5, "k for kNN requests")
	seed := flag.Int64("seed", 1, "workload and traffic seed")
	churnEvery := flag.Duration("churn", 0, "drive membership churn (joins, leaves, crashes) at this interval; 0 disables")
	alpha := flag.Int("alpha", 0, "concurrent can_search probes per lookup step (0 = node default, 1 = serial)")
	rate := flag.Float64("rate", 0, "open-loop arrival rate in req/s for the main run (0 = closed loop)")
	sweep := flag.String("sweep", "", "latency-under-load sweep: comma-separated open-loop rates in req/s (e.g. 200,400,800)")
	sweepDur := flag.Duration("sweep-seconds", 5*time.Second, "duration of each sweep phase")
	zipfS := flag.Float64("zipf", 0, "Zipf exponent s>1 for query-popularity skew (0 = uniform)")
	repeatFrac := flag.Float64("repeat", 0, "fraction of requests repeating the previous request's query")
	cacheViews := flag.Bool("cache-views", false, "enable the per-node view cache on the lookup path")
	cacheSize := flag.Int("cache-size", 0, "view-cache capacity per level (0 = node default)")
	hotReplicate := flag.Bool("hot-replicate", false, "pull and pin hot nodes' views on demand (implies -cache-views)")
	aggFanout := flag.Int("agg-fanout", 0, "delegate flood regions via can_search_agg, sub-delegating to this many frontier claims (0 = off, serial reference)")
	aggDepth := flag.Int("agg-depth", 0, "recursive sub-delegation depth budget (0 = default when -agg-fanout is set)")
	warmPush := flag.Int("warm-push", 0, "after churn epochs, push refreshed views to up to this many recent delegation requesters per node (0 = off)")
	affinity := flag.Bool("affinity", false, "route each query to a coordinator chosen by query hash so repeats land on warm caches (publishes stay random)")
	streamPublish := flag.Bool("stream-publish", false, "publish through the streaming incremental kernel: O(changed clusters) record deltas announced per publish instead of stale summaries (incompatible with -agg-fanout)")
	reclusterEvery := flag.Int("recluster-every", 0, "with -stream-publish, re-cluster a node's levels after this many streamed inserts (0 = never)")
	publishRate := flag.Float64("publish-rate", 0, "open-loop publish ingest in items/s running alongside the query load, reported as an 'ingest' row (0 = off)")
	cold := flag.Int("cold", 0, "after the main run and sweeps, clear every node's caches and issue this many distinct first-touch queries, reported as a 'cold' row")
	cpus := flag.Int("cpus", 0, "GOMAXPROCS override for the whole process (0 = leave the runtime default)")
	appendOut := flag.Bool("append", false, "append rows to -out instead of overwriting it")
	out := flag.String("out", "", "also write the rows to this path (e.g. BENCH_serve.json)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the load run to this path")
	memprofile := flag.String("memprofile", "", "write an allocation profile at the end of the load run to this path")
	dumpCounters := flag.Bool("dump-counters", false, "print every cluster counter after the main run (RPC mix debugging)")
	flag.Parse()

	sweepRates, err := parseRates(*sweep)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hyperm-load: -sweep: %v\n", err)
		return 2
	}
	if *zipfS != 0 && *zipfS <= 1 {
		fmt.Fprintln(os.Stderr, "hyperm-load: -zipf must be > 1 (or 0 for uniform)")
		return 2
	}
	if *repeatFrac < 0 || *repeatFrac >= 1 {
		fmt.Fprintln(os.Stderr, "hyperm-load: -repeat must be in [0,1)")
		return 2
	}
	if *hotReplicate {
		*cacheViews = true
	}
	if *streamPublish && *aggFanout > 0 {
		fmt.Fprintln(os.Stderr, "hyperm-load: -stream-publish is incompatible with -agg-fanout (delegated view pools are not revalidated against record churn)")
		return 2
	}
	if *publishRate < 0 {
		fmt.Fprintln(os.Stderr, "hyperm-load: -publish-rate must be >= 0")
		return 2
	}
	if *cpus > 0 {
		// Before any cluster or client goroutine exists, so the whole run —
		// serving nodes and load generators alike — shares the budget. The
		// benchio envelope's Env stamp records what this changed.
		runtime.GOMAXPROCS(*cpus)
	}

	fmt.Printf("hyperm-load: building %d-node workload (items/peer=%d dim=%d levels=%d seed=%d)\n",
		*nodes, *itemsPerPeer, *dim, *levels, *seed)
	sys, err := experiments.BuildMarkovSystem(experiments.Params{
		Peers: *nodes, ItemsPerPeer: *itemsPerPeer, Dim: *dim,
		Levels: *levels, ClustersPerPeer: *clustersPerPeer, Seed: *seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "hyperm-load: %v\n", err)
		return 1
	}
	sys.PublishAll()

	var tr transport.Transport
	var listen func(int) string
	switch *transportName {
	case "tcp":
		tr = transport.NewTCP()
		listen = func(int) string { return "127.0.0.1:0" }
	case "chan":
		tr = transport.NewChan()
		listen = func(int) string { return "" }
	default:
		fmt.Fprintf(os.Stderr, "hyperm-load: unknown transport %q\n", *transportName)
		return 2
	}
	defer tr.Close()

	policy := transport.Policy{Timeout: 60 * time.Second, Seed: *seed}
	var mopts membership.Options
	if *churnEvery > 0 {
		// Churn needs the failure detector: crashed nodes' zones must be
		// taken over or availability collapses to the pre-crash topology.
		mopts = membership.Options{ProbeInterval: 100 * time.Millisecond, ProbeTimeout: 500 * time.Millisecond, FailAfter: 3}
	}
	tuning := node.Tuning{
		Alpha:          *alpha,
		CacheViews:     *cacheViews,
		CacheSize:      *cacheSize,
		HotReplicate:   *hotReplicate,
		AggFanout:      *aggFanout,
		AggDepth:       *aggDepth,
		WarmPush:       *warmPush,
		StreamPublish:  *streamPublish,
		ReclusterEvery: *reclusterEvery,
	}
	cl, err := node.StartClusterTuned(sys, tr, listen, policy, mopts, tuning)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hyperm-load: %v\n", err)
		return 1
	}
	defer cl.Stop()
	effAlpha := *alpha
	if effAlpha == 0 {
		effAlpha = node.DefaultAlpha
	}
	fmt.Printf("hyperm-load: %d nodes up (%s transport, alpha=%d)\n", len(cl.Nodes), *transportName, effAlpha)

	// Clients target only currently-alive nodes; the churn driver is the sole
	// writer of this list (and of cl itself) once the run starts.
	var addrMu sync.RWMutex
	aliveAddrs := append([]string(nil), cl.Addrs...)
	pickAddr := func(rng *rand.Rand) string {
		addrMu.RLock()
		defer addrMu.RUnlock()
		return aliveAddrs[rng.Intn(len(aliveAddrs))]
	}
	// Streamed publishes need a base clustering, which churn-joined nodes
	// start without — under -stream-publish, publishes target alive founders
	// only (founder 0 never churns, so the list is never empty).
	aliveFounders := append([]string(nil), cl.Addrs...)
	pickPublishAddr := func(rng *rand.Rand) string {
		if !*streamPublish {
			return pickAddr(rng)
		}
		addrMu.RLock()
		defer addrMu.RUnlock()
		return aliveFounders[rng.Intn(len(aliveFounders))]
	}
	// With -affinity, queries (not publishes) route to a coordinator chosen by
	// hashing the query, so a repeated query lands on the node whose caches it
	// warmed — the client-side policy that turns per-node memos into a
	// cluster-wide one. Publishes stay random: they have no locality to exploit.
	pickQueryAddr := func(rng *rand.Rand, qi int) string {
		if !*affinity {
			return pickAddr(rng)
		}
		addrMu.RLock()
		defer addrMu.RUnlock()
		return aliveAddrs[uint(qi)*2654435761%uint(len(aliveAddrs))]
	}

	// Query pool: in-domain centers (stored items) with inter-item radii, so
	// range and kNN requests do real multi-level, multi-peer work.
	poolRng := rand.New(rand.NewSource(*seed + 7))
	const poolSize = 64
	var centers [][]float64
	var radii []float64
	for len(centers) < poolSize {
		_, itemsA := sys.PeerData(poolRng.Intn(*nodes))
		_, itemsB := sys.PeerData(poolRng.Intn(*nodes))
		if len(itemsA) == 0 || len(itemsB) == 0 {
			continue
		}
		q := itemsA[poolRng.Intn(len(itemsA))]
		centers = append(centers, q)
		radii = append(radii, vec.Dist(q, itemsB[poolRng.Intn(len(itemsB))]))
	}

	// Query sequence: request i's query index, drawn up front so the stream is
	// deterministic regardless of which client issues which request. Zipf skew
	// (rank 0 = hottest center) and repeat-previous model the popularity
	// locality of real query streams — the demand signal the view cache and
	// hot replication exploit.
	const querySeqLen = 1 << 16
	queryIdx := make([]int, querySeqLen)
	qrng := rand.New(rand.NewSource(*seed + 13))
	draw := func() int { return qrng.Intn(len(centers)) }
	if *zipfS > 0 {
		z := rand.NewZipf(qrng, *zipfS, 1, uint64(len(centers)-1))
		draw = func() int { return int(z.Uint64()) }
	}
	queryIdx[0] = draw()
	for i := 1; i < querySeqLen; i++ {
		if qrng.Float64() < *repeatFrac {
			queryIdx[i] = queryIdx[i-1]
		} else {
			queryIdx[i] = draw()
		}
	}

	client := node.NewClient(tr, policy)
	ctx := context.Background()

	// Per-phase cache telemetry: cluster-wide counter deltas bracketing the
	// main run and each sweep phase. The baseline is taken before the churn
	// driver starts and deltas only after it stops, so cl.Nodes is never read
	// while Join may grow it.
	prevCC := map[string]float64{}
	clusterCC := func() map[string]float64 {
		agg := map[string]float64{}
		for _, nd := range cl.Nodes {
			for k, v := range nd.Counters() {
				agg[k] += v
			}
		}
		return agg
	}
	ccDelta := func() map[string]float64 {
		cur := clusterCC()
		delta := map[string]float64{}
		for k, v := range cur {
			delta[k] = v - prevCC[k]
		}
		prevCC = cur
		return delta
	}
	prevCC = clusterCC()

	effCacheSize := *cacheSize
	if *cacheViews && effCacheSize == 0 {
		effCacheSize = node.DefaultCacheSize
	}
	effAggDepth := *aggDepth
	if *aggFanout > 0 && effAggDepth == 0 {
		effAggDepth = node.DefaultAggDepth
	}
	// decorate stamps a row with the workload/tuning configuration and, when
	// phase counters are given, the cache telemetry of that row's phase.
	decorate := func(row *ServeBenchRow, cc map[string]float64, queries int) {
		row.ZipfS, row.RepeatFrac = *zipfS, *repeatFrac
		row.CacheViews, row.CacheSize, row.HotReplicate = *cacheViews, effCacheSize, *hotReplicate
		row.Affinity = *affinity
		row.AggFanout, row.AggDepth, row.WarmPush = *aggFanout, effAggDepth, *warmPush
		row.StreamPublish, row.PublishRate = *streamPublish, *publishRate
		if *streamPublish {
			row.ReclusterEvery = *reclusterEvery
		}
		if !*cacheViews {
			row.CacheSize = 0
		}
		if cc == nil {
			return
		}
		row.CacheHits = cc["cache.hit"]
		row.CacheMisses = cc["cache.miss"]
		row.CacheRevalidations = cc["cache.revalidate"]
		row.CacheEvictions = cc["cache.evict"]
		row.CacheEpochStale = cc["cache.stale"]
		row.ReplicaHits = cc["cache.replica_hit"]
		probes := cc["cache.hit"] + cc["cache.replica_hit"] + cc["cache.revalidate_ok"] +
			cc["cache.revalidate_stale"] + cc["cache.miss"]
		if probes > 0 {
			row.CacheHitRate = (cc["cache.hit"] + cc["cache.replica_hit"]) / probes
		}
		row.PathHits = cc["cache.path_hit"]
		row.PathMisses = cc["cache.path_miss"]
		if t := row.PathHits + row.PathMisses; t > 0 {
			row.LookupHitRate = row.PathHits / t
		}
		if queries > 0 {
			row.CanSearchPerQuery = cc["rpc.can_search"] / float64(queries)
		}
		row.FetchLocalHits = cc["cache.fetch_local_hit"]
		row.FetchMemoHits = cc["cache.fetch_hit"]
		row.FetchInvalidations = cc["cache.fetch_inval"]
		fetchRPC := cc["rpc.fetch_range"] + cc["rpc.fetch_knn"]
		if t := row.FetchLocalHits + fetchRPC; t > 0 {
			row.FetchHitRate = row.FetchLocalHits / t
		}
		if queries > 0 {
			row.FetchPerQuery = fetchRPC / float64(queries)
		}
		if queries > 0 {
			row.CoordPerQuery = (cc["coord.can_search"] + cc["coord.agg"] + cc["coord.view_version"]) / float64(queries)
			row.AggPerQuery = cc["coord.agg"] / float64(queries)
			row.GatheredPerQuery = cc["agg.gathered_views"] / float64(queries)
		}
		row.WarmPushes = cc["warm.push"]
		row.WarmInstalls = cc["warm.install"]
	}

	// The churn driver: every -churn interval, join a fresh node through
	// founder 0 (never churned), gracefully leave one, or crash one —
	// keeping the alive population between half and double the founding
	// size. Runs until the request stream completes.
	churnStop := make(chan struct{})
	var churnWG sync.WaitGroup
	churnCounts := map[string]int{}
	if *churnEvery > 0 {
		churnWG.Add(1)
		go func() {
			defer churnWG.Done()
			rng := rand.New(rand.NewSource(*seed + 101))
			alive := map[int]bool{}
			for id := range cl.Nodes {
				alive[id] = true
			}
			publish := func() {
				addrMu.Lock()
				aliveAddrs = aliveAddrs[:0]
				aliveFounders = aliveFounders[:0]
				for id, up := range alive {
					if up {
						aliveAddrs = append(aliveAddrs, cl.Addrs[id])
						if id < *nodes {
							aliveFounders = append(aliveFounders, cl.Addrs[id])
						}
					}
				}
				addrMu.Unlock()
			}
			victims := func() []int {
				var out []int
				for id, up := range alive {
					if up && id != 0 {
						out = append(out, id)
					}
				}
				sort.Ints(out)
				return out
			}
			tick := time.NewTicker(*churnEvery)
			defer tick.Stop()
			for {
				select {
				case <-churnStop:
					return
				case <-tick.C:
				}
				aliveN := 0
				for _, up := range alive {
					if up {
						aliveN++
					}
				}
				op := rng.Intn(4) // 0,1 join; 2 leave; 3 crash
				if aliveN <= *nodes/2+1 {
					op = 0
				} else if aliveN >= 2**nodes {
					op = 2 + rng.Intn(2)
				}
				switch {
				case op < 2:
					points := make([][]float64, sys.Config().Levels)
					bad := false
					for l := range points {
						ov, ok := sys.Overlay(l).(*can.Overlay)
						if !ok {
							bad = true
							break
						}
						pt := make([]float64, ov.Dim())
						for d := range pt {
							pt[d] = rng.Float64()
						}
						points[l] = pt
					}
					if bad {
						continue
					}
					nd, err := cl.Join(ctx, sys, cl.Addrs[0], points)
					if err != nil {
						fmt.Fprintf(os.Stderr, "hyperm-load: churn join: %v\n", err)
						continue
					}
					alive[nd.Peer()] = true
					churnCounts["join"]++
				case op == 2:
					vs := victims()
					if len(vs) == 0 {
						continue
					}
					v := vs[rng.Intn(len(vs))]
					alive[v] = false
					publish() // stop targeting the leaver before it departs
					if err := cl.Nodes[v].Leave(ctx); err != nil {
						fmt.Fprintf(os.Stderr, "hyperm-load: churn leave %d: %v\n", v, err)
					}
					cl.Nodes[v].Stop()
					churnCounts["leave"]++
				default:
					vs := victims()
					if len(vs) == 0 {
						continue
					}
					v := vs[rng.Intn(len(vs))]
					alive[v] = false
					cl.Nodes[v].Stop() // abrupt: detectors must notice
					churnCounts["crash"]++
				}
				publish()
			}
		}()
	}

	var next int64
	var nextID int64 = 1 << 20 // publish ids beyond the corpus range
	results := make([][]sample, *clients)

	// issueOne executes request i of the deterministic mix against a random
	// alive node and times it. Shared by the closed-loop clients, the
	// open-loop dispatcher, and the sweep phases.
	issueOne := func(rng *rand.Rand, i int64) sample {
		op := opFor(i)
		qi := queryIdx[int(i%querySeqLen)]
		var addr string
		if op == 0 {
			addr = pickPublishAddr(rng)
		} else {
			addr = pickQueryAddr(rng, qi)
		}
		var err error
		t0 := time.Now()
		switch op {
		case 0:
			item := append([]float64(nil), centers[qi]...)
			for d := range item {
				item[d] += 0.01 * rng.Float64()
			}
			err = client.Publish(ctx, addr, int(atomic.AddInt64(&nextID, 1)), item)
		case 1:
			_, err = client.Range(ctx, addr, centers[qi], radii[qi], core.RangeOptions{})
		case 2:
			_, err = client.KNN(ctx, addr, centers[qi], *k, core.KNNOptions{})
		}
		return sample{op: op, dur: time.Since(t0), err: err}
	}

	// runOpen offers total requests at the given arrival rate regardless of
	// completion (open loop — queueing delay shows up in the latencies, which
	// is the point of the sweep). Falling behind is repaid immediately, so
	// the average offered rate holds even when a sleep overshoots.
	runOpen := func(rateQPS float64, total int64, seedBase int64) ([]sample, float64) {
		samples := make([]sample, total)
		var wg sync.WaitGroup
		startT := time.Now()
		for i := int64(0); i < total; i++ {
			target := startT.Add(time.Duration(float64(i) / rateQPS * float64(time.Second)))
			if d := time.Until(target); d > 0 {
				time.Sleep(d)
			}
			wg.Add(1)
			go func(i int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seedBase + i))
				samples[i] = issueOne(rng, i)
			}(i)
		}
		wg.Wait()
		return samples, time.Since(startT).Seconds()
	}

	// The ingest driver: -publish-rate items/s of open-loop publishes running
	// alongside the query load for the whole main phase — the memory-scale
	// scenario bench-mem measures, a store that grows while it serves. Each
	// publish is dispatched at its scheduled arrival regardless of completion,
	// so queueing delay shows up in the ingest latencies.
	ingestStop := make(chan struct{})
	var ingestWG sync.WaitGroup
	var ingestMu sync.Mutex
	var ingestSamples []sample
	if *publishRate > 0 {
		ingestWG.Add(1)
		go func() {
			defer ingestWG.Done()
			var callWG sync.WaitGroup
			defer callWG.Wait()
			rng := rand.New(rand.NewSource(*seed + 211))
			startT := time.Now()
			for i := int64(0); ; i++ {
				target := startT.Add(time.Duration(float64(i) / *publishRate * float64(time.Second)))
				if d := time.Until(target); d > 0 {
					select {
					case <-ingestStop:
						return
					case <-time.After(d):
					}
				} else {
					select {
					case <-ingestStop:
						return
					default:
					}
				}
				qi := queryIdx[int(i%querySeqLen)]
				item := append([]float64(nil), centers[qi]...)
				for d := range item {
					item[d] += 0.01 * rng.Float64()
				}
				addr := pickPublishAddr(rng)
				id := int(atomic.AddInt64(&nextID, 1))
				callWG.Add(1)
				go func() {
					defer callWG.Done()
					t0 := time.Now()
					err := client.Publish(ctx, addr, id, item)
					ingestMu.Lock()
					ingestSamples = append(ingestSamples, sample{op: 0, dur: time.Since(t0), err: err})
					ingestMu.Unlock()
				}()
			}
		}()
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hyperm-load: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "hyperm-load: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}

	var msBase runtime.MemStats
	runtime.ReadMemStats(&msBase)
	start := time.Now()
	var elapsed float64
	if *rate > 0 {
		samples, secs := runOpen(*rate, int64(*requests), *seed*1000)
		elapsed = secs
		results = [][]sample{samples}
		if *churnEvery == 0 {
			for i, s := range samples {
				if s.err != nil {
					fmt.Fprintf(os.Stderr, "hyperm-load: %s request %d: %v\n", opNames[s.op], i, s.err)
				}
			}
		}
	} else {
		var wg sync.WaitGroup
		for c := 0; c < *clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(*seed*1000 + int64(c)))
				for {
					i := atomic.AddInt64(&next, 1) - 1
					if i >= int64(*requests) {
						return
					}
					s := issueOne(rng, i)
					results[c] = append(results[c], s)
					if s.err != nil && *churnEvery == 0 {
						fmt.Fprintf(os.Stderr, "hyperm-load: %s request %d: %v\n", opNames[s.op], i, s.err)
					}
				}
			}(c)
		}
		wg.Wait()
		elapsed = time.Since(start).Seconds()
	}
	close(churnStop)
	close(ingestStop)
	churnWG.Wait()
	ingestWG.Wait()
	// Memory telemetry, captured before the profile-flush GC below so the
	// heap number reflects the serving steady state, not a post-collection
	// floor. The store sums are exact accounting, independent of GC timing.
	var msEnd runtime.MemStats
	runtime.ReadMemStats(&msEnd)
	storeBytes, storeItems := 0, 0
	for _, nd := range cl.Nodes {
		storeBytes += nd.StoreHeapBytes()
		storeItems += nd.ItemCount()
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hyperm-load: %v\n", err)
			return 1
		}
		runtime.GC() // flush the final allocation epoch into the profile
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			fmt.Fprintf(os.Stderr, "hyperm-load: %v\n", err)
			f.Close()
			return 1
		}
		f.Close()
	}
	mainCC := ccDelta()

	// Aggregate per op class plus the "all" row.
	perOp := map[string][]time.Duration{}
	errs := map[string]int{}
	classes := map[string]map[string]int{}
	for _, rs := range results {
		for _, s := range rs {
			name := opNames[s.op]
			if s.err != nil {
				errs[name]++
				errs["all"]++
				class := errorClass(s.err)
				for _, key := range []string{name, "all"} {
					if classes[key] == nil {
						classes[key] = map[string]int{}
					}
					classes[key][class]++
				}
				continue
			}
			perOp[name] = append(perOp[name], s.dur)
			perOp["all"] = append(perOp["all"], s.dur)
		}
	}
	// Ingest aggregates feed both the "ingest" row and the per-publish
	// announcement cost on the "all" row.
	var ingestDurs []time.Duration
	ingestErrs := 0
	ingestClasses := map[string]int{}
	for _, s := range ingestSamples {
		if s.err != nil {
			ingestErrs++
			ingestClasses[errorClass(s.err)]++
			if *churnEvery == 0 {
				fmt.Fprintf(os.Stderr, "hyperm-load: ingest publish: %v\n", s.err)
			}
			continue
		}
		ingestDurs = append(ingestDurs, s.dur)
	}
	if ingestErrs == 0 {
		ingestClasses = nil
	}
	mainPublishes := len(perOp["publish"]) + errs["publish"] + len(ingestSamples)

	var rows []ServeBenchRow
	for _, op := range []string{"publish", "range", "knn", "all"} {
		durs := perOp[op]
		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
		row := ServeBenchRow{
			Op: op, Transport: *transportName, Nodes: *nodes, Clients: *clients,
			Requests: len(durs) + errs[op], Errors: errs[op], Seconds: elapsed,
			P50Ms: percentile(durs, 0.50), P95Ms: percentile(durs, 0.95), P99Ms: percentile(durs, 0.99),
			ErrorClasses: classes[op], Alpha: effAlpha, OfferedQPS: *rate,
		}
		if elapsed > 0 {
			row.QPS = float64(row.Requests) / elapsed
		}
		var cc map[string]float64
		if op == "all" {
			cc = mainCC
		}
		decorate(&row, cc, len(perOp["all"])+errs["all"])
		if op == "all" {
			row.HeapBytes = msEnd.HeapAlloc
			row.StoreBytes = storeBytes
			row.StoreItems = storeItems
			if storeItems > 0 {
				row.StoreBytesPerItem = float64(storeBytes) / float64(storeItems)
			}
			row.GCPauseP99Ms = gcPauseP99(&msBase, &msEnd)
			if *streamPublish && mainPublishes > 0 {
				row.StoreRecPerPublish = mainCC["stream.store_rec"] / float64(mainPublishes)
			}
		}
		rows = append(rows, row)
	}
	if *publishRate > 0 {
		sort.Slice(ingestDurs, func(i, j int) bool { return ingestDurs[i] < ingestDurs[j] })
		row := ServeBenchRow{
			Op: "ingest", Transport: *transportName, Nodes: *nodes, Clients: *clients,
			Requests: len(ingestSamples), Errors: ingestErrs, Seconds: elapsed,
			P50Ms: percentile(ingestDurs, 0.50), P95Ms: percentile(ingestDurs, 0.95), P99Ms: percentile(ingestDurs, 0.99),
			ErrorClasses: ingestClasses, Alpha: effAlpha, OfferedQPS: *publishRate,
		}
		if elapsed > 0 {
			row.QPS = float64(len(ingestSamples)) / elapsed
		}
		decorate(&row, nil, 0)
		rows = append(rows, row)
	}
	if *churnEvery > 0 {
		total := len(perOp["all"]) + errs["all"]
		row := ServeBenchRow{
			Op: "availability", Transport: *transportName, Nodes: *nodes, Clients: *clients,
			Requests: total, Errors: errs["all"], Seconds: elapsed,
			ErrorClasses: classes["all"], ChurnEvents: churnCounts,
		}
		if total > 0 {
			row.Availability = float64(total-errs["all"]) / float64(total)
		}
		decorate(&row, nil, 0)
		rows = append(rows, row)
	}

	// Latency-under-load sweep: offer each requested rate open-loop on the
	// warm cluster and report one qps→latency curve point per rate. Queueing
	// delay beyond the service capacity shows up in the percentiles — the
	// saturation knee the closed-loop aggregate row cannot show.
	sweepErrs := 0
	for si, r := range sweepRates {
		total := int64(r * sweepDur.Seconds())
		if total < 1 {
			total = 1
		}
		fmt.Printf("hyperm-load: sweep %.0f req/s for %s (%d requests)\n", r, *sweepDur, total)
		samples, secs := runOpen(r, total, *seed*1000000+int64(si)*1000000)
		var durs []time.Duration
		nerr := 0
		sweepClasses := map[string]int{}
		for _, s := range samples {
			if s.err != nil {
				nerr++
				sweepClasses[errorClass(s.err)]++
				continue
			}
			durs = append(durs, s.dur)
		}
		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
		if nerr == 0 {
			sweepClasses = nil
		}
		sweepErrs += nerr
		row := ServeBenchRow{
			Op: "sweep", Transport: *transportName, Nodes: *nodes, Clients: *clients,
			Requests: len(samples), Errors: nerr, Seconds: secs,
			P50Ms: percentile(durs, 0.50), P95Ms: percentile(durs, 0.95), P99Ms: percentile(durs, 0.99),
			ErrorClasses: sweepClasses, Alpha: effAlpha, OfferedQPS: r,
		}
		if secs > 0 {
			row.QPS = float64(len(samples)) / secs
		}
		decorate(&row, ccDelta(), len(samples))
		rows = append(rows, row)
	}

	// Cold phase: clear every node's caches — view cache, lookup memo, fetch
	// memos, client fetch cache — then issue -cold distinct never-repeated
	// queries closed-loop. Every lookup is a first touch, so the row's
	// CoordPerQuery is the Θ(N)-vs-delegated number the can_search_agg
	// tentpole targets, measured on the same cluster as the warm rows.
	coldErrs := 0
	if *cold > 0 {
		for _, nd := range cl.Nodes {
			nd.ClearCaches()
		}
		ccDelta() // re-baseline: cold telemetry must not inherit warm-phase counters
		coldRng := rand.New(rand.NewSource(*seed + 23))
		coldQ := make([][]float64, *cold)
		coldR := make([]float64, *cold)
		for i := range coldQ {
			// Distinct center per query — a pool center plus a tiny jitter —
			// so no two cold queries can share a lookup memo entry.
			q := append([]float64(nil), centers[i%len(centers)]...)
			for d := range q {
				q[d] += 1e-6 * (1 + coldRng.Float64())
			}
			coldQ[i] = q
			coldR[i] = radii[i%len(radii)]
		}
		fmt.Printf("hyperm-load: cold phase: caches cleared, %d first-touch queries\n", *cold)
		var coldNext int64
		coldSamples := make([][]sample, *clients)
		coldStart := time.Now()
		var wg sync.WaitGroup
		for c := 0; c < *clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(*seed*2000 + int64(c)))
				for {
					i := atomic.AddInt64(&coldNext, 1) - 1
					if i >= int64(*cold) {
						return
					}
					addr := pickAddr(rng)
					var err error
					t0 := time.Now()
					if i%2 == 0 {
						_, err = client.Range(ctx, addr, coldQ[i], coldR[i], core.RangeOptions{})
					} else {
						_, err = client.KNN(ctx, addr, coldQ[i], *k, core.KNNOptions{})
					}
					coldSamples[c] = append(coldSamples[c], sample{op: 1 + int(i%2), dur: time.Since(t0), err: err})
				}
			}(c)
		}
		wg.Wait()
		coldSecs := time.Since(coldStart).Seconds()
		var durs []time.Duration
		coldClasses := map[string]int{}
		for _, cs := range coldSamples {
			for _, s := range cs {
				if s.err != nil {
					coldErrs++
					coldClasses[errorClass(s.err)]++
					if *churnEvery == 0 {
						fmt.Fprintf(os.Stderr, "hyperm-load: cold %s request: %v\n", opNames[s.op], s.err)
					}
					continue
				}
				durs = append(durs, s.dur)
			}
		}
		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
		if coldErrs == 0 {
			coldClasses = nil
		}
		row := ServeBenchRow{
			Op: "cold", Transport: *transportName, Nodes: *nodes, Clients: *clients,
			Requests: *cold, Errors: coldErrs, Seconds: coldSecs,
			P50Ms: percentile(durs, 0.50), P95Ms: percentile(durs, 0.95), P99Ms: percentile(durs, 0.99),
			ErrorClasses: coldClasses, Alpha: effAlpha,
		}
		if coldSecs > 0 {
			row.QPS = float64(*cold) / coldSecs
		}
		decorate(&row, ccDelta(), *cold)
		fmt.Printf("hyperm-load: cold path: %.2f coordinator RPCs/query (can_search+agg+version), %.2f delegations/query, %.2f gathered views/query\n",
			row.CoordPerQuery, row.AggPerQuery, row.GatheredPerQuery)
		rows = append(rows, row)
	}

	workload := "uniform"
	if *zipfS > 0 {
		workload = fmt.Sprintf("zipf(s=%g)", *zipfS)
	}
	if *repeatFrac > 0 {
		workload += fmt.Sprintf("+repeat(%g)", *repeatFrac)
	}
	cacheDesc := "off"
	if *cacheViews {
		cacheDesc = fmt.Sprintf("%d/level", effCacheSize)
		if *hotReplicate {
			cacheDesc += "+hot"
		}
	}
	aggDesc := "off"
	if *aggFanout > 0 {
		aggDesc = fmt.Sprintf("fanout=%d depth=%d", *aggFanout, effAggDepth)
		if *warmPush > 0 {
			aggDesc += fmt.Sprintf(" warm=%d", *warmPush)
		}
	}
	if *affinity {
		workload += "+affinity"
	}
	fmt.Printf("\nServing throughput — %d requests, %d clients, %d nodes, %s transport, alpha=%d, queries=%s, cache=%s, agg=%s\n",
		*requests, *clients, *nodes, *transportName, effAlpha, workload, cacheDesc, aggDesc)
	fmt.Printf("%-8s %-9s %-9s %-7s %-10s %-9s %-9s %-9s\n", "op", "offered", "requests", "errors", "qps", "p50_ms", "p95_ms", "p99_ms")
	for _, r := range rows {
		if r.Op == "availability" {
			continue // summarized separately below
		}
		offered := "-"
		if r.OfferedQPS > 0 {
			offered = fmt.Sprintf("%.0f", r.OfferedQPS)
		}
		fmt.Printf("%-8s %-9s %-9d %-7d %-10.1f %-9.3f %-9.3f %-9.3f\n",
			r.Op, offered, r.Requests, r.Errors, r.QPS, r.P50Ms, r.P95Ms, r.P99Ms)
	}

	{
		var allRow *ServeBenchRow
		for i := range rows {
			if rows[i].Op == "all" {
				allRow = &rows[i]
			}
		}
		fmt.Printf("\nmemory: heap=%.1f MiB, stores=%.1f MiB / %d items = %.1f B/item, gc_pause_p99=%.3f ms\n",
			float64(allRow.HeapBytes)/(1<<20), float64(allRow.StoreBytes)/(1<<20),
			allRow.StoreItems, allRow.StoreBytesPerItem, allRow.GCPauseP99Ms)
		if *streamPublish {
			fmt.Printf("stream publish: %d mix + %d ingested publishes, %.0f store_rec announcements (%.2f per publish)\n",
				len(perOp["publish"])+errs["publish"], len(ingestSamples),
				mainCC["stream.store_rec"], allRow.StoreRecPerPublish)
		}
	}

	if *cacheViews {
		cc := mainCC
		var allRow *ServeBenchRow
		for i := range rows {
			if rows[i].Op == "all" {
				allRow = &rows[i]
			}
		}
		fmt.Printf("\ncache: hits=%.0f replica_hits=%.0f misses=%.0f reval=%.0f (ok=%.0f ver_stale=%.0f) "+
			"evict=%.0f neg_hits=%.0f pins=%.0f pulls=%.0f hit-rate=%.1f%% can_search/query=%.2f\n",
			cc["cache.hit"], cc["cache.replica_hit"], cc["cache.miss"], cc["cache.revalidate"],
			cc["cache.revalidate_ok"], cc["cache.revalidate_stale"], cc["cache.evict"], cc["cache.neg_hit"],
			cc["cache.pin"], cc["cache.replicate_pull"], 100*allRow.CacheHitRate, allRow.CanSearchPerQuery)
		fmt.Printf("lookup-memo: hits=%.0f misses=%.0f hit-rate=%.1f%%\n",
			allRow.PathHits, allRow.PathMisses, 100*allRow.LookupHitRate)
		fmt.Printf("fetch: local_hits=%.0f holder_memo_hits=%.0f invalidations=%.0f "+
			"hit-rate=%.1f%% fetch-rpc/query=%.2f\n",
			allRow.FetchLocalHits, allRow.FetchMemoHits, allRow.FetchInvalidations,
			100*allRow.FetchHitRate, allRow.FetchPerQuery)
	}

	if *dumpCounters {
		names := make([]string, 0, len(mainCC))
		for name := range mainCC {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Println("\ncluster counters (main run):")
		for _, name := range names {
			fmt.Printf("  %-24s %12.0f\n", name, mainCC[name])
		}
	}

	if *out != "" {
		write := benchio.Write
		if *appendOut {
			write = benchio.Append
		}
		if err := write(*out, "serve", rows); err != nil {
			fmt.Fprintf(os.Stderr, "hyperm-load: %v\n", err)
			return 1
		}
		fmt.Printf("\nwrote %s\n", *out)
	}
	if *churnEvery > 0 {
		last := rows[len(rows)-1]
		fmt.Printf("\navailability under churn: %.4f (%d/%d ok; churn: join=%d leave=%d crash=%d)\n",
			last.Availability, last.Requests-last.Errors, last.Requests,
			churnCounts["join"], churnCounts["leave"], churnCounts["crash"])
		// Churn runs tolerate mid-takeover failures; a run where nothing
		// succeeded still means the cluster was down, not just churning.
		if last.Requests > 0 && last.Requests == last.Errors {
			fmt.Fprintln(os.Stderr, "hyperm-load: every request failed under churn")
			return 1
		}
		return 0
	}
	if errs["all"] > 0 {
		var parts []string
		for class, n := range classes["all"] {
			parts = append(parts, fmt.Sprintf("%s=%d", class, n))
		}
		sort.Strings(parts)
		fmt.Fprintf(os.Stderr, "hyperm-load: %d requests failed (%s)\n",
			errs["all"], strings.Join(parts, " "))
		return 1
	}
	if ingestErrs > 0 {
		fmt.Fprintf(os.Stderr, "hyperm-load: %d ingest publishes failed\n", ingestErrs)
		return 1
	}
	if sweepErrs > 0 {
		fmt.Fprintf(os.Stderr, "hyperm-load: %d sweep requests failed\n", sweepErrs)
		return 1
	}
	if coldErrs > 0 {
		fmt.Fprintf(os.Stderr, "hyperm-load: %d cold requests failed\n", coldErrs)
		return 1
	}
	return 0
}

// parseRates parses the -sweep flag: a comma-separated list of positive
// open-loop rates in requests/second.
func parseRates(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	var out []float64
	for _, part := range strings.Split(s, ",") {
		var r float64
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%g", &r); err != nil || r <= 0 {
			return nil, fmt.Errorf("bad rate %q", part)
		}
		out = append(out, r)
	}
	return out, nil
}
