// Command hyperm-gen generates the repository's evaluation datasets to disk
// so external tooling can inspect or reuse them.
//
// Usage:
//
//	hyperm-gen -kind markov -n 10000 -dim 512 -o markov.csv
//	hyperm-gen -kind aloi -objects 1000 -views 12 -bins 64 -o aloi.csv
//
// The output is CSV: one row per vector; for the ALOI-substitute corpus the
// first column is the object label.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"

	"hyperm/internal/dataset"
)

func main() {
	kind := flag.String("kind", "markov", "dataset kind: 'markov' (§5.1) or 'aloi' (§6 substitute)")
	n := flag.Int("n", 10000, "markov: number of vectors")
	dim := flag.Int("dim", 512, "markov: dimensionality")
	objects := flag.Int("objects", 1000, "aloi: number of objects")
	views := flag.Int("views", 12, "aloi: views per object")
	bins := flag.Int("bins", 64, "aloi: histogram bins")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("o", "-", "output file ('-' = stdout)")
	flag.Parse()

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	defer bw.Flush()

	rng := rand.New(rand.NewSource(*seed))
	switch *kind {
	case "markov":
		data := dataset.Markov(dataset.MarkovConfig{N: *n, Dim: *dim}, rng)
		for _, v := range data {
			writeRow(bw, -1, v)
		}
	case "aloi":
		data, labels := dataset.ALOI(dataset.ALOIConfig{Objects: *objects, Views: *views, Bins: *bins}, rng)
		for i, v := range data {
			writeRow(bw, labels[i], v)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown kind %q (want 'markov' or 'aloi')\n", *kind)
		os.Exit(2)
	}
}

func writeRow(w *bufio.Writer, label int, v []float64) {
	if label >= 0 {
		w.WriteString(strconv.Itoa(label))
	}
	for i, x := range v {
		if i > 0 || label >= 0 {
			w.WriteByte(',')
		}
		w.WriteString(strconv.FormatFloat(x, 'g', -1, 64))
	}
	w.WriteByte('\n')
}
