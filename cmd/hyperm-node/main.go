// Command hyperm-node runs one serving node of a Hyper-M cluster over TCP.
//
// Every process rebuilds the same deterministic deployment from the shared
// workload parameters (the simulator doubles as the cluster bootstrap — all
// processes derive identical overlay state from the same seed), extracts its
// own peer's snapshot, and serves it until SIGINT/SIGTERM.
//
// Usage:
//
//	hyperm-node -config node0.json
//
// with a config like:
//
//	{
//	  "peer": 0,
//	  "listen": "127.0.0.1:7400",
//	  "peers": ["127.0.0.1:7400", "127.0.0.1:7401"],
//	  "workload": {
//	    "peers": 2, "items_per_peer": 40, "dim": 32,
//	    "levels": 3, "clusters_per_peer": 4, "seed": 1
//	  }
//	}
//
// "peers" lists every node's address in peer-id order; it must be identical
// across the cluster. Query RPCs ("range", "knn") arriving at this node are
// coordinated by it peer-to-peer via can_search/fetch RPCs to those
// addresses.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"hyperm/internal/experiments"
	"hyperm/internal/node"
	"hyperm/internal/transport"
)

// workloadConfig mirrors experiments.Params in JSON clothing.
type workloadConfig struct {
	Peers           int   `json:"peers"`
	ItemsPerPeer    int   `json:"items_per_peer"`
	Dim             int   `json:"dim"`
	Levels          int   `json:"levels"`
	ClustersPerPeer int   `json:"clusters_per_peer"`
	Seed            int64 `json:"seed"`
}

type nodeConfig struct {
	Peer     int            `json:"peer"`
	Listen   string         `json:"listen"`
	Peers    []string       `json:"peers"`
	Workload workloadConfig `json:"workload"`
}

func main() { os.Exit(run()) }

func run() int {
	configPath := flag.String("config", "", "path to the node's JSON config (required)")
	flag.Parse()
	if *configPath == "" {
		fmt.Fprintln(os.Stderr, "hyperm-node: -config is required")
		flag.Usage()
		return 2
	}
	raw, err := os.ReadFile(*configPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hyperm-node: %v\n", err)
		return 1
	}
	var cfg nodeConfig
	if err := json.Unmarshal(raw, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "hyperm-node: parsing %s: %v\n", *configPath, err)
		return 1
	}
	w := cfg.Workload
	if cfg.Peer < 0 || cfg.Peer >= w.Peers {
		fmt.Fprintf(os.Stderr, "hyperm-node: peer %d outside workload of %d peers\n", cfg.Peer, w.Peers)
		return 1
	}
	if len(cfg.Peers) != w.Peers {
		fmt.Fprintf(os.Stderr, "hyperm-node: config lists %d peer addresses for %d peers\n", len(cfg.Peers), w.Peers)
		return 1
	}

	fmt.Printf("hyperm-node: building workload (peers=%d items/peer=%d dim=%d levels=%d seed=%d)\n",
		w.Peers, w.ItemsPerPeer, w.Dim, w.Levels, w.Seed)
	sys, err := experiments.BuildMarkovSystem(experiments.Params{
		Peers: w.Peers, ItemsPerPeer: w.ItemsPerPeer, Dim: w.Dim,
		Levels: w.Levels, ClustersPerPeer: w.ClustersPerPeer, Seed: w.Seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "hyperm-node: %v\n", err)
		return 1
	}
	sys.PublishAll()
	snap, err := node.ExtractSnapshot(sys, cfg.Peer)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hyperm-node: %v\n", err)
		return 1
	}

	tr := transport.NewTCP()
	defer tr.Close()
	nd, err := node.New(node.Config{Snapshot: snap, Transport: tr, Listen: cfg.Listen})
	if err != nil {
		fmt.Fprintf(os.Stderr, "hyperm-node: %v\n", err)
		return 1
	}
	if err := nd.Start(); err != nil {
		fmt.Fprintf(os.Stderr, "hyperm-node: %v\n", err)
		return 1
	}
	nd.SetPeers(cfg.Peers)
	fmt.Printf("hyperm-node: peer %d serving %d items on %s\n", cfg.Peer, nd.ItemCount(), nd.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("\nhyperm-node: shutting down")
	if err := nd.Stop(); err != nil {
		fmt.Fprintf(os.Stderr, "hyperm-node: stop: %v\n", err)
		return 1
	}
	for name, v := range nd.Counters() {
		fmt.Printf("hyperm-node: %s = %.0f\n", name, v)
	}
	return 0
}
