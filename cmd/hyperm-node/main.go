// Command hyperm-node runs one serving node of a Hyper-M cluster over TCP.
//
// Every process rebuilds the same deterministic deployment from the shared
// workload parameters (the simulator doubles as the cluster bootstrap — all
// processes derive identical overlay state from the same seed), extracts its
// own peer's snapshot, and serves it until SIGINT/SIGTERM.
//
// Usage:
//
//	hyperm-node -config node0.json
//
// with a config like:
//
//	{
//	  "peer": 0,
//	  "listen": "127.0.0.1:7400",
//	  "peers": ["127.0.0.1:7400", "127.0.0.1:7401"],
//	  "workload": {
//	    "peers": 2, "items_per_peer": 40, "dim": 32,
//	    "levels": 3, "clusters_per_peer": 4, "seed": 1
//	  }
//	}
//
// "peers" lists every node's address in peer-id order; it must be identical
// across the cluster. Query RPCs ("range", "knn") arriving at this node are
// coordinated by it peer-to-peer via can_search/fetch RPCs to those
// addresses.
//
// A process can instead join a running cluster as a brand-new peer:
//
//	hyperm-node -config joiner.json -join 127.0.0.1:7400
//
// with "peer" set to the next unused peer id (>= the workload's peer count).
// The node starts empty — no snapshot state — and splices itself into the
// live overlay through the bootstrap address: each level's zone owning the
// join point is split and the joiner inherits its share of the index records.
//
// With -probe-interval > 0 the node runs the membership failure detector:
// unresponsive neighbors are declared dead after -fail-after missed probes,
// their zones taken over and their records republished from replicas. -leave
// makes shutdown graceful: zones and records are handed to neighbors first.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux, served only when -pprof-addr is set
	"os"
	"os/signal"
	"syscall"
	"time"

	"hyperm/internal/can"
	"hyperm/internal/experiments"
	"hyperm/internal/membership"
	"hyperm/internal/node"
	"hyperm/internal/transport"
)

// workloadConfig mirrors experiments.Params in JSON clothing.
type workloadConfig struct {
	Peers           int   `json:"peers"`
	ItemsPerPeer    int   `json:"items_per_peer"`
	Dim             int   `json:"dim"`
	Levels          int   `json:"levels"`
	ClustersPerPeer int   `json:"clusters_per_peer"`
	Seed            int64 `json:"seed"`
}

type nodeConfig struct {
	Peer     int            `json:"peer"`
	Listen   string         `json:"listen"`
	Peers    []string       `json:"peers"`
	Workload workloadConfig `json:"workload"`
}

func main() { os.Exit(run()) }

func run() int {
	configPath := flag.String("config", "", "path to the node's JSON config (required)")
	joinAddr := flag.String("join", "", "bootstrap address of a running cluster to join as a new, empty peer")
	probeInterval := flag.Duration("probe-interval", time.Second, "liveness probe interval (0 disables crash detection)")
	probeTimeout := flag.Duration("probe-timeout", 250*time.Millisecond, "per-probe response deadline")
	failAfter := flag.Int("fail-after", 3, "consecutive failed probes before a neighbor is declared dead")
	graceful := flag.Bool("leave", false, "leave gracefully on shutdown: hand zones and records to neighbors")
	alpha := flag.Int("alpha", 0, "concurrent can_search probes per lookup step (0 = default, 1 = serial)")
	cacheViews := flag.Bool("cache-views", false, "cache peers' can_search views with churn-epoch invalidation")
	cacheSize := flag.Int("cache-size", 0, "view-cache capacity per level (0 = default)")
	hotReplicate := flag.Bool("hot-replicate", false, "pull and pin hot peers' views on demand (implies -cache-views)")
	aggFanout := flag.Int("agg-fanout", 0, "delegate flood regions via can_search_agg, sub-delegating to this many frontier claims (0 = off, serial reference)")
	aggDepth := flag.Int("agg-depth", 0, "recursive sub-delegation depth budget (0 = default when -agg-fanout is set)")
	warmPush := flag.Int("warm-push", 0, "after churn epochs, push this node's refreshed view to up to this many recent delegation requesters (0 = off)")
	streamPublish := flag.Bool("stream-publish", false, "publish through the streaming incremental kernel: O(changed clusters) record deltas announced per publish (incompatible with -agg-fanout)")
	reclusterEvery := flag.Int("recluster-every", 0, "with -stream-publish, re-cluster this node's levels after this many streamed inserts (0 = never)")
	publishRate := flag.Float64("publish-rate", 0, "self-ingest jittered workload items into this node at this rate (items/s) until shutdown; 0 disables")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this address (e.g. 127.0.0.1:6060; empty disables)")
	flag.Parse()
	if *hotReplicate {
		*cacheViews = true
	}
	if *configPath == "" {
		fmt.Fprintln(os.Stderr, "hyperm-node: -config is required")
		flag.Usage()
		return 2
	}
	raw, err := os.ReadFile(*configPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hyperm-node: %v\n", err)
		return 1
	}
	var cfg nodeConfig
	if err := json.Unmarshal(raw, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "hyperm-node: parsing %s: %v\n", *configPath, err)
		return 1
	}
	w := cfg.Workload
	if *joinAddr == "" {
		if cfg.Peer < 0 || cfg.Peer >= w.Peers {
			fmt.Fprintf(os.Stderr, "hyperm-node: peer %d outside workload of %d peers\n", cfg.Peer, w.Peers)
			return 1
		}
		if len(cfg.Peers) != w.Peers {
			fmt.Fprintf(os.Stderr, "hyperm-node: config lists %d peer addresses for %d peers\n", len(cfg.Peers), w.Peers)
			return 1
		}
	} else if cfg.Peer < w.Peers {
		// A joiner must take a fresh id: founder ids are owned by the
		// snapshot-serving processes of the bootstrap deployment.
		fmt.Fprintf(os.Stderr, "hyperm-node: joining peer id %d collides with the %d founders\n", cfg.Peer, w.Peers)
		return 1
	}

	fmt.Printf("hyperm-node: building workload (peers=%d items/peer=%d dim=%d levels=%d seed=%d)\n",
		w.Peers, w.ItemsPerPeer, w.Dim, w.Levels, w.Seed)
	sys, err := experiments.BuildMarkovSystem(experiments.Params{
		Peers: w.Peers, ItemsPerPeer: w.ItemsPerPeer, Dim: w.Dim,
		Levels: w.Levels, ClustersPerPeer: w.ClustersPerPeer, Seed: w.Seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "hyperm-node: %v\n", err)
		return 1
	}
	sys.PublishAll()
	var snap node.Snapshot
	if *joinAddr == "" {
		snap, err = node.ExtractSnapshot(sys, cfg.Peer)
	} else {
		snap, err = node.JoinSnapshot(sys, cfg.Peer)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "hyperm-node: %v\n", err)
		return 1
	}

	if *pprofAddr != "" {
		// Opt-in debug listener: the pprof mux only, never the default mux of
		// the serving path, so live profiles can be captured under load.
		ln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hyperm-node: pprof listen %s: %v\n", *pprofAddr, err)
			return 1
		}
		fmt.Printf("hyperm-node: pprof on http://%s/debug/pprof/\n", ln.Addr())
		go func() {
			if err := http.Serve(ln, nil); err != nil {
				fmt.Fprintf(os.Stderr, "hyperm-node: pprof server: %v\n", err)
			}
		}()
	}

	tr := transport.NewTCP()
	defer tr.Close()
	nd, err := node.New(node.Config{
		Snapshot:  snap,
		Transport: tr,
		Listen:    cfg.Listen,
		Membership: membership.Options{
			ProbeInterval: *probeInterval,
			ProbeTimeout:  *probeTimeout,
			FailAfter:     *failAfter,
		},
		Tuning: node.Tuning{
			Alpha:          *alpha,
			CacheViews:     *cacheViews,
			CacheSize:      *cacheSize,
			HotReplicate:   *hotReplicate,
			AggFanout:      *aggFanout,
			AggDepth:       *aggDepth,
			WarmPush:       *warmPush,
			StreamPublish:  *streamPublish,
			ReclusterEvery: *reclusterEvery,
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "hyperm-node: %v\n", err)
		return 1
	}
	if err := nd.Start(); err != nil {
		fmt.Fprintf(os.Stderr, "hyperm-node: %v\n", err)
		return 1
	}
	if len(cfg.Peers) > 0 {
		nd.SetPeers(cfg.Peers)
	}
	if *joinAddr != "" {
		// Join points are derived deterministically from the workload seed and
		// the peer id, so a restarted joiner splits the same zones.
		rng := rand.New(rand.NewSource(w.Seed*1000003 + int64(cfg.Peer)))
		points := make([][]float64, w.Levels)
		for l := range points {
			ov, ok := sys.Overlay(l).(*can.Overlay)
			if !ok {
				fmt.Fprintf(os.Stderr, "hyperm-node: level %d overlay is %T, want *can.Overlay\n", l, sys.Overlay(l))
				nd.Stop()
				return 1
			}
			pt := make([]float64, ov.Dim())
			for d := range pt {
				pt[d] = rng.Float64()
			}
			points[l] = pt
		}
		if err := nd.Join(context.Background(), *joinAddr, points); err != nil {
			fmt.Fprintf(os.Stderr, "hyperm-node: join via %s: %v\n", *joinAddr, err)
			nd.Stop()
			return 1
		}
		fmt.Printf("hyperm-node: peer %d joined the cluster via %s on %s\n", cfg.Peer, *joinAddr, nd.Addr())
	} else {
		fmt.Printf("hyperm-node: peer %d serving %d items on %s\n", cfg.Peer, nd.ItemCount(), nd.Addr())
	}

	// Self-ingest driver: publish jittered copies of the workload's items into
	// this node at the offered rate until shutdown — the standing-load scenario
	// a memory-scale deployment runs, with -stream-publish announcing each
	// publish's changed records instead of letting the summaries go stale.
	ingestStop := make(chan struct{})
	ingestDone := make(chan struct{})
	var ingested, ingestErrs int64
	if *publishRate > 0 {
		if *streamPublish && *joinAddr != "" {
			fmt.Fprintln(os.Stderr, "hyperm-node: -publish-rate with -stream-publish needs a base clustering, which a joiner starts without")
			nd.Stop()
			return 2
		}
		basePeer := cfg.Peer % w.Peers
		_, items := sys.PeerData(basePeer)
		go func() {
			defer close(ingestDone)
			rng := rand.New(rand.NewSource(w.Seed + int64(cfg.Peer)*31 + 211))
			// Per-node id space, disjoint from the corpus and from other nodes'
			// drivers, so cluster-wide results never conflate two ingested items.
			next := int64(cfg.Peer+1)<<32 | 1<<20
			startT := time.Now()
			for i := int64(0); ; i++ {
				target := startT.Add(time.Duration(float64(i) / *publishRate * float64(time.Second)))
				if d := time.Until(target); d > 0 {
					select {
					case <-ingestStop:
						return
					case <-time.After(d):
					}
				} else {
					select {
					case <-ingestStop:
						return
					default:
					}
				}
				item := append([]float64(nil), items[rng.Intn(len(items))]...)
				for d := range item {
					item[d] += 0.01 * rng.Float64()
				}
				if err := nd.Publish(int(next), item); err != nil {
					if ingestErrs == 0 {
						fmt.Fprintf(os.Stderr, "hyperm-node: ingest publish: %v\n", err)
					}
					ingestErrs++
				} else {
					ingested++
				}
				next++
			}
		}()
		fmt.Printf("hyperm-node: ingesting %.0f items/s (stream=%v)\n", *publishRate, *streamPublish)
	} else {
		close(ingestDone)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("\nhyperm-node: shutting down")
	close(ingestStop)
	<-ingestDone
	if *publishRate > 0 {
		fmt.Printf("hyperm-node: ingested %d items (%d errors), now serving %d\n", ingested, ingestErrs, nd.ItemCount())
	}
	if *graceful {
		if err := nd.Leave(context.Background()); err != nil {
			fmt.Fprintf(os.Stderr, "hyperm-node: graceful leave: %v\n", err)
		} else {
			fmt.Println("hyperm-node: zones handed over")
		}
	}
	if err := nd.Stop(); err != nil {
		fmt.Fprintf(os.Stderr, "hyperm-node: stop: %v\n", err)
		return 1
	}
	for name, v := range nd.Counters() {
		fmt.Printf("hyperm-node: %s = %.0f\n", name, v)
	}
	return 0
}
