// Command hyperm-bench regenerates the paper's evaluation figures as text
// tables. Every figure of Lupu et al. (ICDE 2007) has a driver; -run selects
// one (or "all"), -scale selects the workload size.
//
// Usage:
//
//	hyperm-bench -run all                 # every figure, scaled-down
//	hyperm-bench -run fig8b -scale paper  # one figure at publication scale
//	hyperm-bench -run kernels -out BENCH_kernels.json
//	hyperm-bench -list                    # list experiment ids
//
// Paper-scale runs (100 nodes × 1000 items × 512 dims) take minutes; the
// default scale finishes in seconds and preserves every qualitative shape.
// -cpuprofile / -memprofile write pprof profiles of the run for digging into
// the hot paths with `go tool pprof`.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"hyperm/internal/experiments"
)

type experiment struct {
	id, desc string
	run      func(scale string) (string, error)
}

func main() {
	// Profile flushing must happen on every exit path, and os.Exit skips
	// deferred calls — so main delegates to run and exits on its code.
	os.Exit(run())
}

func run() int {
	runID := flag.String("run", "all", "experiment id to run (see -list), or 'all'")
	scale := flag.String("scale", "default", "workload scale: 'default' or 'paper'")
	seed := flag.Int64("seed", 1, "random seed")
	parallel := flag.Int("parallel", 0, "worker parallelism: 0 = all cores, 1 = serial (results are identical either way)")
	out := flag.String("out", "", "for -run publish/kernels: also write the rows to this path as JSON (e.g. BENCH_kernels.json)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this path")
	memprofile := flag.String("memprofile", "", "write a heap profile taken after the run to this path")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	exps := registry(*seed, *parallel, *out)
	if *list {
		for _, e := range exps {
			fmt.Printf("%-12s %s\n", e.id, e.desc)
		}
		return 0
	}
	if *scale != "default" && *scale != "paper" {
		fmt.Fprintf(os.Stderr, "unknown scale %q (want 'default' or 'paper')\n", *scale)
		return 2
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			f.Close()
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the final live heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}()
	}

	ran := 0
	for _, e := range exps {
		if *runID != "all" && e.id != *runID {
			continue
		}
		ran++
		start := time.Now()
		out, err := e.run(*scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.id, err)
			return 1
		}
		fmt.Printf("== %s (%s scale, %.1fs) ==\n%s\n", e.id, *scale, time.Since(start).Seconds(), out)
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *runID)
		return 2
	}
	return 0
}

func registry(seed int64, parallelism int, out string) []experiment {
	params := func(scale string) experiments.Params {
		p := experiments.DefaultParams()
		if scale == "paper" {
			p = experiments.PaperScale()
		}
		p.Seed = seed
		p.Parallelism = parallelism
		return p
	}
	eff := func(scale string) experiments.EffectivenessParams {
		p := experiments.DefaultEffectiveness()
		if scale == "paper" {
			p = experiments.PaperEffectiveness()
		}
		p.Seed = seed
		p.Parallelism = parallelism
		return p
	}
	return []experiment{
		{"fig8a", "cluster replication overhead vs clusters/peer", func(s string) (string, error) {
			rows, err := experiments.Fig8a(params(s), nil)
			return experiments.RenderFig8a(rows), err
		}},
		{"fig8b", "avg hops per item vs data volume (Hyper-M vs CAN baselines)", func(s string) (string, error) {
			rows, err := experiments.Fig8b(params(s), nil)
			return experiments.RenderFig8b(rows), err
		}},
		{"fig8c", "avg hops per item vs overlay layers", func(s string) (string, error) {
			rows, err := experiments.Fig8c(params(s), nil)
			return experiments.RenderFig8c(rows), err
		}},
		{"fig9", "data distribution among nodes under skew", func(s string) (string, error) {
			rows, err := experiments.Fig9(params(s), 3)
			return experiments.RenderFig9(rows), err
		}},
		{"fig10a", "range query recall vs peers contacted", func(s string) (string, error) {
			rows, err := experiments.Fig10a(eff(s), nil)
			return experiments.RenderFig10a(rows), err
		}},
		{"fig10b", "k-nn precision/recall vs clusters/peer and C", func(s string) (string, error) {
			rows, err := experiments.Fig10b(eff(s), nil, nil)
			return experiments.RenderFig10b(rows), err
		}},
		{"fig10c", "recall loss vs post-creation insertions", func(s string) (string, error) {
			rows, err := experiments.Fig10c(eff(s), nil)
			return experiments.RenderFig10c(rows), err
		}},
		{"fig11", "clustering quality per vector space", func(s string) (string, error) {
			rows, err := experiments.Fig11(eff(s), 6)
			return experiments.RenderFig11(rows), err
		}},
		{"energy", "modeled energy/makespan on a MANET (extension)", func(s string) (string, error) {
			p := experiments.DefaultEnergyParams()
			p.Params = params(s)
			rows, err := experiments.ExtEnergy(p)
			return experiments.RenderEnergy(rows), err
		}},
		{"overlay", "overlay independence: CAN vs z-order ring (extension)", func(s string) (string, error) {
			rows, err := experiments.ExtOverlayIndependence(eff(s))
			return experiments.RenderOverlayIndep(rows), err
		}},
		{"agg", "score aggregation policy ablation (extension)", func(s string) (string, error) {
			rows, err := experiments.ExtAggregation(eff(s))
			return experiments.RenderAgg(rows), err
		}},
		{"levels", "wavelet levels cost/quality trade-off (extension, §6.1.1)", func(s string) (string, error) {
			rows, err := experiments.ExtLevels(eff(s), nil)
			return experiments.RenderLevels(rows), err
		}},
		{"wavelet", "wavelet convention ablation: averaging/orthonormal/D4 (extension)", func(s string) (string, error) {
			rows, err := experiments.ExtWavelet(eff(s))
			return experiments.RenderWavelet(rows), err
		}},
		{"loss", "failure injection: recall under message loss (extension)", func(s string) (string, error) {
			rows, err := experiments.ExtLoss(eff(s), nil)
			return experiments.RenderLoss(rows), err
		}},
		{"churn", "peer failures after publication (extension)", func(s string) (string, error) {
			rows, err := experiments.ExtChurn(eff(s), nil)
			return experiments.RenderChurn(rows), err
		}},
		{"scale", "cost scaling with network size (extension)", func(s string) (string, error) {
			rows, err := experiments.ExtScale(params(s), nil)
			return experiments.RenderScale(rows), err
		}},
		{"publish", "publication throughput: PublishAll wall-clock, serial vs -parallel", func(s string) (string, error) {
			// Serial baseline first, then the requested parallelism, so the
			// speedup column is meaningful even with -parallel left at 0.
			rows, err := experiments.PublishBench(params(s), []int{1, parallelism})
			if err != nil {
				return "", err
			}
			if out != "" {
				if err := experiments.WritePublishBenchJSON(out, rows); err != nil {
					return "", err
				}
			}
			return experiments.RenderPublishBench(rows), nil
		}},
		{"kernels", "kernel speedups: optimized vs reference k-means and Eq 8 solver", func(s string) (string, error) {
			rows, err := experiments.KernelBench(seed)
			if err != nil {
				return "", err
			}
			if out != "" {
				if err := experiments.WriteKernelBenchJSON(out, rows); err != nil {
					return "", err
				}
			}
			return experiments.RenderKernelBench(rows), nil
		}},
	}
}

var _ = strings.TrimSpace // keep strings imported for future table tweaks
