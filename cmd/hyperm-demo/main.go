// Command hyperm-demo builds a Hyper-M network over the ALOI-substitute
// image corpus and runs an interactive query loop, printing per-query cost
// and quality against the exact centralized baseline.
//
// Commands at the prompt:
//
//	range <item-id> <radius>   distributed range query around an item
//	knn <item-id> <k>          distributed k-nn query around an item
//	peer <peer-id>             show a peer's collection size
//	stats                      network statistics
//	quit
//
// Run with -script to feed commands non-interactively:
//
//	hyperm-demo -script "range 10 0.08; knn 3 5; stats; quit"
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	"hyperm"
	"hyperm/internal/dataset"
	"hyperm/internal/eval"
	"hyperm/internal/flatindex"
)

func main() {
	peers := flag.Int("peers", 25, "number of peers")
	objects := flag.Int("objects", 200, "ALOI-substitute objects")
	views := flag.Int("views", 12, "views per object")
	bins := flag.Int("bins", 64, "histogram bins (power of two)")
	levels := flag.Int("levels", 4, "wavelet levels")
	clusters := flag.Int("clusters", 10, "clusters per peer per level")
	seed := flag.Int64("seed", 1, "random seed")
	script := flag.String("script", "", "semicolon-separated commands to run instead of stdin")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	fmt.Printf("generating %d objects x %d views (%d-d histograms)...\n", *objects, *views, *bins)
	data, labels := dataset.ALOI(dataset.ALOIConfig{Objects: *objects, Views: *views, Bins: *bins}, rng)

	net, err := hyperm.New(hyperm.Options{
		Peers: *peers, Dim: *bins, Levels: *levels, ClustersPerPeer: *clusters, Seed: *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for i, x := range data {
		if err := net.AddItems(labels[i]%*peers, []int{i}, [][]float64{x}); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	start := time.Now()
	rep, err := net.Publish()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("published %d items as %d cluster summaries in %.2fs — %d overlay hops (%.3f hops/item)\n",
		rep.Items, rep.Clusters, time.Since(start).Seconds(), rep.OverlayHops, rep.HopsPerItem())
	truth := flatindex.New(data)

	var lines []string
	if *script != "" {
		lines = strings.Split(*script, ";")
	}
	sc := bufio.NewScanner(os.Stdin)
	next := func() (string, bool) {
		if *script != "" {
			if len(lines) == 0 {
				return "", false
			}
			l := lines[0]
			lines = lines[1:]
			return l, true
		}
		fmt.Print("hyperm> ")
		if !sc.Scan() {
			return "", false
		}
		return sc.Text(), true
	}

	for {
		line, ok := next()
		if !ok {
			return
		}
		fields := strings.Fields(strings.TrimSpace(line))
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "quit", "exit":
			return
		case "stats":
			fmt.Printf("peers=%d items=%d clusters=%d publish-hops=%d hops/item=%.3f\n",
				net.Peers(), net.Items(), rep.Clusters, rep.OverlayHops, rep.HopsPerItem())
		case "peer":
			id, err := argInt(fields, 1)
			if err != nil || id < 0 || id >= *peers {
				fmt.Println("usage: peer <peer-id>")
				continue
			}
			count := 0
			for i := range data {
				if labels[i]%*peers == id {
					count++
				}
			}
			fmt.Printf("peer %d holds %d items\n", id, count)
		case "range":
			id, err1 := argInt(fields, 1)
			r, err2 := argFloat(fields, 2)
			if err1 != nil || err2 != nil || id < 0 || id >= len(data) {
				fmt.Println("usage: range <item-id> <radius>")
				continue
			}
			ans, err := net.Range(0, data[id], r)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			rel := truth.Range(data[id], r)
			p, rec := eval.PrecisionRecall(ans.Items, rel)
			fmt.Printf("range(item %d, r=%.3f): %d items, %d peers contacted, %d overlay hops — precision %.2f recall %.2f (exact: %d)\n",
				id, r, len(ans.Items), ans.PeersContacted, ans.OverlayHops, p, rec, len(rel))
		case "knn":
			id, err1 := argInt(fields, 1)
			k, err2 := argInt(fields, 2)
			if err1 != nil || err2 != nil || id < 0 || id >= len(data) || k < 1 {
				fmt.Println("usage: knn <item-id> <k>")
				continue
			}
			ans, err := net.KNN(0, data[id], k)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			rel := truth.KNN(data[id], k)
			p, rec := eval.PrecisionRecall(ans.Items, rel)
			top := ans.Items
			if len(top) > k {
				top = top[:k]
			}
			fmt.Printf("knn(item %d, k=%d): top %v, %d peers contacted, %d overlay hops — precision %.2f recall %.2f\n",
				id, k, top, ans.PeersContacted, ans.OverlayHops, p, rec)
		default:
			fmt.Println("commands: range <id> <radius> | knn <id> <k> | peer <id> | stats | quit")
		}
	}
}

func argInt(fields []string, i int) (int, error) {
	if i >= len(fields) {
		return 0, fmt.Errorf("missing arg")
	}
	return strconv.Atoi(fields[i])
}

func argFloat(fields []string, i int) (float64, error) {
	if i >= len(fields) {
		return 0, fmt.Errorf("missing arg")
	}
	return strconv.ParseFloat(fields[i], 64)
}
